// Extension experiment: chaos sweep — fault injection and recovery across
// all five in-memory methods.
//
// The paper's Table IV catalogues how the staging libraries die when a
// resource runs out; this bench injects the *operational* failures the
// paper's production context implies (staging-server crash, lossy or
// degraded links, transient RDMA registration flaps) and measures what the
// recovery machinery in imc::fault buys: typed failures instead of aborts,
// ridden-out transients, and graceful degradation to the MPI-IO file path
// when a staging method loses its servers mid-run.
//
// Every fault decision is a pure function of (IMC_FAULT_SEED, operation
// identity, attempt) — never of the event schedule or clock — so stdout and
// trace digests are byte-identical at every IMC_THREADS, and the
// chaos-invariant-digest (outcomes + recovery counts + failures) is
// byte-identical under every IMC_SCHEDULE (fifo / lifo / shuffle). The CI
// chaos gate diffs exactly those two.
//
// The second sweep measures what replicated staging (imc::repl, DESIGN.md
// §15) buys on identical fault plans: replication factor x crash count on
// DataSpaces-native, against the MPI-IO fallback as the R=1 baseline. The
// payload is sized so factor 3 fits under Titan's registered-memory cap —
// at the paper's full 20 MB/proc, R=3 trips the Fig. 4 RDMA wall, which is
// the durability-vs-memory trade-off in one number.
//
// Knobs: IMC_FAULT_SEED (plan seed), IMC_FAULT_BACKOFF (transport retry
// initial backoff, seconds), IMC_SCHEDULE (tie-break policy).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "fault/fault.h"

using namespace imc;
using workflow::MethodSel;

namespace {

struct PlanRow {
  const char* name;
  fault::Plan plan;
  bool fallback;
};

sim::Schedule schedule_from_env() {
  const std::string which = env::str_or_die("IMC_SCHEDULE", "fifo");
  sim::Schedule schedule;
  if (which == "fifo") {
    schedule.tie_break = sim::TieBreak::kFifo;
  } else if (which == "lifo") {
    schedule.tie_break = sim::TieBreak::kLifo;
  } else if (which == "shuffle") {
    schedule.tie_break = sim::TieBreak::kSeededShuffle;
    schedule.seed = 0x9e3779b97f4a7c15ull;
  } else {
    std::fprintf(stderr,
                 "imc: IMC_SCHEDULE=%s invalid (want fifo|lifo|shuffle)\n",
                 which.c_str());
    std::exit(2);
  }
  return schedule;
}

}  // namespace

int main() {
  bench::print_banner("Extension: chaos sweep",
                      "fault injection + recovery across the five methods");

  const auto seed = static_cast<std::uint64_t>(
      env::int_or_die("IMC_FAULT_SEED", 0x5eedfa17, 1, 1ll << 62));
  const double backoff =
      env::double_or_die("IMC_FAULT_BACKOFF", 5e-4, 1e-6, 1.0);
  const sim::Schedule schedule = schedule_from_env();

  const MethodSel kMethods[] = {MethodSel::kMpiIo,
                                MethodSel::kDataspacesNative,
                                MethodSel::kDimesNative, MethodSel::kFlexpath,
                                MethodSel::kDecaf};

  // The three chaos plans. Times are virtual seconds into the run.
  PlanRow plans[3];
  plans[0].name = "server-crash";
  plans[0].plan.server_crash.at = 0.0123;  // before the first publish
  plans[0].plan.server_crash.server = 0;
  plans[0].fallback = true;  // degrade to MPI-IO when staging dies
  plans[1].name = "link-loss";
  plans[1].plan.packet_loss = 0.15;
  plans[1].plan.link_degrade = {0.05, 0.4, 0.5};  // half bandwidth window
  plans[1].fallback = false;
  plans[2].name = "rdma-flap";
  plans[2].plan.rdma_flap = 0.25;
  plans[2].fallback = false;
  for (PlanRow& row : plans) {
    row.plan.seed = seed;
    row.plan.transport_retry.initial_backoff = backoff;
    row.plan.transport_retry.max_attempts = 6;
  }

  std::printf("\nLAMMPS+MSD, (32,16), Titan, 20 MB/proc/step, seed=0x%llx\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-20s %14s %14s %14s\n", "method", plans[0].name,
              plans[1].name, plans[2].name);

  std::vector<workflow::Spec> specs;
  for (MethodSel method : kMethods) {
    for (const PlanRow& row : plans) {
      workflow::Spec spec;
      spec.app = workflow::AppSel::kLammps;
      spec.method = method;
      spec.machine = hpc::titan();
      spec.nsim = 32;
      spec.nana = 16;
      spec.steps = 3;
      spec.schedule = schedule;
      spec.fault = row.plan;
      spec.fallback.to_mpi_io = row.fallback;
      specs.push_back(spec);
    }
  }
  const auto results = bench::run_all(specs);

  std::size_t i = 0;
  for (MethodSel method : kMethods) {
    std::printf("%-20s", std::string(workflow::to_string(method)).c_str());
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& result = results[i + p];
      if (result.ok && result.fault.fallback_activated) {
        std::printf(" %12s", "RECOVERED");
      } else if (result.ok) {
        std::printf(" %12.2fs", result.end_to_end);
      } else {
        std::printf(" %13s", bench::cell(result).c_str() + 2);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
    i += 3;
  }

  // Machine-parseable per-scenario recovery metrics (scripts/bench.py folds
  // these into BENCH_perf.json). Counts are schedule-invariant by the
  // determinism contract; times are deterministic per schedule.
  std::printf("\n");
  i = 0;
  for (MethodSel method : kMethods) {
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& r = results[i + p];
      std::printf(
          "recovery: method=%s plan=%s ok=%d fallback=%d "
          "time_to_recover=%.6f retries=%llu injected=%llu dropped=%llu "
          "timeouts=%llu crashes=%llu node_deaths=%llu failures=%zu "
          "end_to_end=%.6f\n",
          std::string(workflow::to_string(method)).c_str(), plans[p].name,
          r.ok ? 1 : 0, r.fault.fallback_activated ? 1 : 0,
          r.fault.time_to_recover,
          static_cast<unsigned long long>(r.fault.retries),
          static_cast<unsigned long long>(r.fault.injected),
          static_cast<unsigned long long>(r.fault.dropped_ops),
          static_cast<unsigned long long>(r.fault.timeouts),
          static_cast<unsigned long long>(r.fault.server_crashes),
          static_cast<unsigned long long>(r.fault.node_deaths),
          r.failures.size(), r.end_to_end);
    }
    i += 3;
  }
  std::fflush(stdout);

  // ---- Durability sweep: replication factor x crash count ----------------
  //
  // DataSpaces-native, 6 staging servers, crashes mid-run (after step-0
  // puts, before the step-2 reads). The 2-crash plan kills servers 0 and 1
  // half a virtual second apart, so the second crash races the first
  // crash's resilver — and wipes the whole R=2 version board (members are
  // servers 0..R-1), which is the one plan where factor 2 still has to
  // fall back while factor 3 rides it out on board member 2.
  struct CrashCol {
    const char* name;
    std::vector<fault::Plan::ServerCrash> crashes;
  };
  const CrashCol kCrashCols[] = {
      {"1-crash", {{2.5, 0}}},
      {"2-crash", {{2.5, 0}, {3.0, 1}}},
  };
  const int kFactors[] = {1, 2, 3};

  std::printf("\nDurability: LAMMPS+MSD, (32,16), 10 MB/proc/step, "
              "6 servers, MPI-IO fallback armed\n");
  std::printf("%-10s %14s %14s\n", "factor", kCrashCols[0].name,
              kCrashCols[1].name);

  std::vector<workflow::Spec> repl_specs;
  for (int factor : kFactors) {
    for (const CrashCol& col : kCrashCols) {
      workflow::Spec spec;
      spec.app = workflow::AppSel::kLammps;
      spec.method = MethodSel::kDataspacesNative;
      spec.machine = hpc::titan();
      spec.nsim = 32;
      spec.nana = 16;
      spec.steps = 3;
      spec.lammps_atoms_per_proc = 256000;  // 10 MB/proc: R=3 fits the cap
      spec.num_servers = 6;
      spec.schedule = schedule;
      spec.fault.seed = seed;
      spec.fault.server_crashes = col.crashes;
      spec.fault.transport_retry.initial_backoff = backoff;
      spec.fallback.to_mpi_io = true;
      spec.repl.factor = factor;
      repl_specs.push_back(spec);
    }
  }
  const auto repl_results = bench::run_all(repl_specs);

  i = 0;
  for (int factor : kFactors) {
    std::printf("R=%-8d", factor);
    for (std::size_t c = 0; c < 2; ++c) {
      const auto& result = repl_results[i + c];
      if (result.ok && !result.fault.fallback_activated &&
          result.repl.objects_lost == 0 && factor > 1) {
        std::printf(" %9.2fs SRV", result.end_to_end);  // survived in place
      } else if (result.ok && result.fault.fallback_activated) {
        std::printf(" %12s", "RECOVERED");
      } else if (result.ok) {
        std::printf(" %12.2fs", result.end_to_end);
      } else {
        std::printf(" %13s", bench::cell(result).c_str() + 2);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
    i += 2;
  }

  // Machine-parseable durability metrics (scripts/bench.py folds these into
  // BENCH_perf.json next to the recovery records). Counts are
  // schedule-invariant; times are deterministic per schedule.
  std::printf("\n");
  i = 0;
  for (int factor : kFactors) {
    for (std::size_t c = 0; c < 2; ++c) {
      const auto& r = repl_results[i + c];
      std::printf(
          "durability: factor=%d plan=%s ok=%d fallback=%d "
          "objects_lost=%llu degraded_gets=%llu under_replicated=%llu "
          "replica_puts=%llu replica_bytes=%llu resilver_copies=%llu "
          "resilver_bytes=%llu resilver_failures=%llu restores=%llu "
          "time_to_restore=%.6f end_to_end=%.6f\n",
          factor, kCrashCols[c].name, r.ok ? 1 : 0,
          r.fault.fallback_activated ? 1 : 0,
          static_cast<unsigned long long>(r.repl.objects_lost),
          static_cast<unsigned long long>(r.repl.degraded_gets),
          static_cast<unsigned long long>(r.repl.under_replicated),
          static_cast<unsigned long long>(r.repl.replica_puts),
          static_cast<unsigned long long>(r.repl.replica_bytes),
          static_cast<unsigned long long>(r.repl.resilver_copies),
          static_cast<unsigned long long>(r.repl.resilver_bytes),
          static_cast<unsigned long long>(r.repl.resilver_failures),
          static_cast<unsigned long long>(r.repl.restores),
          r.repl.time_to_restore, r.end_to_end);
    }
    i += 2;
  }
  std::fflush(stdout);

  // Fold the schedule-invariant facts of every scenario into one digest:
  // outcomes, recovery counts, and sorted failure texts — everything the
  // fault determinism contract pins. Raw span timings are excluded; under
  // contention the engine's same-instant service order legitimately shifts
  // them by microseconds across tie-break policies (see src/check/check.h).
  // CI diffs this line across IMC_SCHEDULE=fifo/lifo/shuffle and the whole
  // stdout across IMC_THREADS.
  std::uint64_t invariant = 0x1b873593u;
  auto fold = [&invariant](std::uint64_t v) {
    invariant = splitmix64(invariant ^ v);
  };
  auto fold_run = [&fold](const workflow::RunResult& r) {
    fold(r.ok ? 1 : 0);
    fold(r.fault.fallback_activated ? 1 : 0);
    fold(r.fault.retries);
    fold(r.fault.injected);
    fold(r.fault.dropped_ops);
    fold(r.fault.timeouts);
    fold(r.fault.server_crashes);
    fold(r.fault.node_deaths);
    fold(r.transfers);
    std::vector<std::string> failures = r.failures;
    std::sort(failures.begin(), failures.end());
    for (const auto& f : failures) {
      for (unsigned char c : f) fold(c);
    }
  };
  for (const auto& r : results) fold_run(r);
  for (const auto& r : repl_results) {
    fold_run(r);
    // Durability counts are part of the invariant contract too: replica
    // placement, failover routing, and resilver copy counts are pure
    // functions of object identity, never of the schedule. time_to_restore
    // is excluded like every raw timing.
    fold(r.repl.replica_puts);
    fold(r.repl.replica_bytes);
    fold(r.repl.degraded_gets);
    fold(r.repl.under_replicated);
    fold(r.repl.objects_lost);
    fold(r.repl.resilver_copies);
    fold(r.repl.resilver_bytes);
    fold(r.repl.resilver_failures);
    fold(r.repl.restores);
  }
  std::printf("\nchaos-invariant-digest: 0x%016llx\n",
              static_cast<unsigned long long>(invariant));

  // Zero-abort contract: a chaos run either completes, recovers through the
  // fallback, or reports typed failures — it never dies silently.
  for (const auto& r : results) {
    if (!r.ok && r.failures.empty()) {
      std::printf("ABORT: a chaos run failed without a typed failure\n");
      return 1;
    }
  }
  for (const auto& r : repl_results) {
    if (!r.ok && r.failures.empty()) {
      std::printf("ABORT: a durability run failed without a typed failure\n");
      return 1;
    }
  }
  // Durability contract: with R >= 2 and a single crash, replicated staging
  // must absorb the failure in place — zero lost objects and no fallback.
  for (std::size_t f = 0; f < 3; ++f) {
    const auto& r = repl_results[f * 2];  // the 1-crash column
    const int factor = kFactors[f];
    if (factor >= 2 &&
        (!r.ok || r.fault.fallback_activated || r.repl.objects_lost > 0)) {
      std::printf("ABORT: R=%d failed to absorb a single server crash\n",
                  factor);
      return 1;
    }
  }
  return 0;
}
