// Extension experiment: chaos sweep — fault injection and recovery across
// all five in-memory methods.
//
// The paper's Table IV catalogues how the staging libraries die when a
// resource runs out; this bench injects the *operational* failures the
// paper's production context implies (staging-server crash, lossy or
// degraded links, transient RDMA registration flaps) and measures what the
// recovery machinery in imc::fault buys: typed failures instead of aborts,
// ridden-out transients, and graceful degradation to the MPI-IO file path
// when a staging method loses its servers mid-run.
//
// Every fault decision is a pure function of (IMC_FAULT_SEED, operation
// identity, attempt) — never of the event schedule or clock — so stdout and
// trace digests are byte-identical at every IMC_THREADS, and the
// chaos-invariant-digest (outcomes + recovery counts + failures) is
// byte-identical under every IMC_SCHEDULE (fifo / lifo / shuffle). The CI
// chaos gate diffs exactly those two.
//
// Knobs: IMC_FAULT_SEED (plan seed), IMC_FAULT_BACKOFF (transport retry
// initial backoff, seconds), IMC_SCHEDULE (tie-break policy).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "fault/fault.h"

using namespace imc;
using workflow::MethodSel;

namespace {

struct PlanRow {
  const char* name;
  fault::Plan plan;
  bool fallback;
};

sim::Schedule schedule_from_env() {
  const std::string which = env::str_or_die("IMC_SCHEDULE", "fifo");
  sim::Schedule schedule;
  if (which == "fifo") {
    schedule.tie_break = sim::TieBreak::kFifo;
  } else if (which == "lifo") {
    schedule.tie_break = sim::TieBreak::kLifo;
  } else if (which == "shuffle") {
    schedule.tie_break = sim::TieBreak::kSeededShuffle;
    schedule.seed = 0x9e3779b97f4a7c15ull;
  } else {
    std::fprintf(stderr,
                 "imc: IMC_SCHEDULE=%s invalid (want fifo|lifo|shuffle)\n",
                 which.c_str());
    std::exit(2);
  }
  return schedule;
}

}  // namespace

int main() {
  bench::print_banner("Extension: chaos sweep",
                      "fault injection + recovery across the five methods");

  const auto seed = static_cast<std::uint64_t>(
      env::int_or_die("IMC_FAULT_SEED", 0x5eedfa17, 1, 1ll << 62));
  const double backoff =
      env::double_or_die("IMC_FAULT_BACKOFF", 5e-4, 1e-6, 1.0);
  const sim::Schedule schedule = schedule_from_env();

  const MethodSel kMethods[] = {MethodSel::kMpiIo,
                                MethodSel::kDataspacesNative,
                                MethodSel::kDimesNative, MethodSel::kFlexpath,
                                MethodSel::kDecaf};

  // The three chaos plans. Times are virtual seconds into the run.
  PlanRow plans[3];
  plans[0].name = "server-crash";
  plans[0].plan.server_crash.at = 0.0123;  // before the first publish
  plans[0].plan.server_crash.server = 0;
  plans[0].fallback = true;  // degrade to MPI-IO when staging dies
  plans[1].name = "link-loss";
  plans[1].plan.packet_loss = 0.15;
  plans[1].plan.link_degrade = {0.05, 0.4, 0.5};  // half bandwidth window
  plans[1].fallback = false;
  plans[2].name = "rdma-flap";
  plans[2].plan.rdma_flap = 0.25;
  plans[2].fallback = false;
  for (PlanRow& row : plans) {
    row.plan.seed = seed;
    row.plan.transport_retry.initial_backoff = backoff;
    row.plan.transport_retry.max_attempts = 6;
  }

  std::printf("\nLAMMPS+MSD, (32,16), Titan, 20 MB/proc/step, seed=0x%llx\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-20s %14s %14s %14s\n", "method", plans[0].name,
              plans[1].name, plans[2].name);

  std::vector<workflow::Spec> specs;
  for (MethodSel method : kMethods) {
    for (const PlanRow& row : plans) {
      workflow::Spec spec;
      spec.app = workflow::AppSel::kLammps;
      spec.method = method;
      spec.machine = hpc::titan();
      spec.nsim = 32;
      spec.nana = 16;
      spec.steps = 3;
      spec.schedule = schedule;
      spec.fault = row.plan;
      spec.fallback.to_mpi_io = row.fallback;
      specs.push_back(spec);
    }
  }
  const auto results = bench::run_all(specs);

  std::size_t i = 0;
  for (MethodSel method : kMethods) {
    std::printf("%-20s", std::string(workflow::to_string(method)).c_str());
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& result = results[i + p];
      if (result.ok && result.fault.fallback_activated) {
        std::printf(" %12s", "RECOVERED");
      } else if (result.ok) {
        std::printf(" %12.2fs", result.end_to_end);
      } else {
        std::printf(" %13s", bench::cell(result).c_str() + 2);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
    i += 3;
  }

  // Machine-parseable per-scenario recovery metrics (scripts/bench.py folds
  // these into BENCH_perf.json). Counts are schedule-invariant by the
  // determinism contract; times are deterministic per schedule.
  std::printf("\n");
  i = 0;
  for (MethodSel method : kMethods) {
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& r = results[i + p];
      std::printf(
          "recovery: method=%s plan=%s ok=%d fallback=%d "
          "time_to_recover=%.6f retries=%llu injected=%llu dropped=%llu "
          "timeouts=%llu crashes=%llu node_deaths=%llu failures=%zu "
          "end_to_end=%.6f\n",
          std::string(workflow::to_string(method)).c_str(), plans[p].name,
          r.ok ? 1 : 0, r.fault.fallback_activated ? 1 : 0,
          r.fault.time_to_recover,
          static_cast<unsigned long long>(r.fault.retries),
          static_cast<unsigned long long>(r.fault.injected),
          static_cast<unsigned long long>(r.fault.dropped_ops),
          static_cast<unsigned long long>(r.fault.timeouts),
          static_cast<unsigned long long>(r.fault.server_crashes),
          static_cast<unsigned long long>(r.fault.node_deaths),
          r.failures.size(), r.end_to_end);
    }
    i += 3;
  }
  std::fflush(stdout);

  // Fold the schedule-invariant facts of every scenario into one digest:
  // outcomes, recovery counts, and sorted failure texts — everything the
  // fault determinism contract pins. Raw span timings are excluded; under
  // contention the engine's same-instant service order legitimately shifts
  // them by microseconds across tie-break policies (see src/check/check.h).
  // CI diffs this line across IMC_SCHEDULE=fifo/lifo/shuffle and the whole
  // stdout across IMC_THREADS.
  std::uint64_t invariant = 0x1b873593u;
  auto fold = [&invariant](std::uint64_t v) {
    invariant = splitmix64(invariant ^ v);
  };
  for (const auto& r : results) {
    fold(r.ok ? 1 : 0);
    fold(r.fault.fallback_activated ? 1 : 0);
    fold(r.fault.retries);
    fold(r.fault.injected);
    fold(r.fault.dropped_ops);
    fold(r.fault.timeouts);
    fold(r.fault.server_crashes);
    fold(r.fault.node_deaths);
    fold(r.transfers);
    std::vector<std::string> failures = r.failures;
    std::sort(failures.begin(), failures.end());
    for (const auto& f : failures) {
      for (unsigned char c : f) fold(c);
    }
  }
  std::printf("\nchaos-invariant-digest: 0x%016llx\n",
              static_cast<unsigned long long>(invariant));

  // Zero-abort contract: a chaos run either completes, recovers through the
  // fallback, or reports typed failures — it never dies silently.
  for (const auto& r : results) {
    if (!r.ok && r.failures.empty()) {
      std::printf("ABORT: a chaos run failed without a typed failure\n");
      return 1;
    }
  }
  return 0;
}
