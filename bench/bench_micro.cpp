// Microbenchmarks (google-benchmark): throughput of the simulation engine
// and the hot paths of the library — useful when tuning the simulator
// itself and as a regression guard for the paper-scale sweeps.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/hilbert.h"
#include "dataspaces/dataspaces.h"
#include "hpc/cluster.h"
#include "ndarray/index.h"
#include "ndarray/ndarray.h"
#include "net/fabric.h"
#include "net/transport.h"
#include "common/log.h"
#include "prof/prof.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sweep/sweep.h"
#include "trace/trace.h"

using namespace imc;

namespace {

// Raw event throughput: N processes ping-ponging through the queue.
void BM_EngineEventThroughput(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn([](sim::Engine& e, int hops) -> sim::Task<> {
      for (int i = 0; i < hops; ++i) co_await e.sleep(1e-6);
    }(engine, hops));
    const std::size_t events = engine.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_MailboxRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Queue<int> ping(engine), pong(engine);
    engine.spawn([](sim::Queue<int>& in, sim::Queue<int>& out) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) out.push(co_await in.pop());
    }(ping, pong));
    engine.spawn([](sim::Queue<int>& out, sim::Queue<int>& in) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) {
        out.push(i);
        benchmark::DoNotOptimize(co_await in.pop());
      }
    }(ping, pong));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxRoundTrip);

// Same-instant scheduling churn: a few processes yield()-storming while a
// large population of far-future sleepers keeps the event heap deep. The
// ready-batch fast path services the yields without touching the heap; the
// parked sleepers are reaped unprocessed when the engine is destroyed.
void BM_EngineSameInstantChurn(benchmark::State& state) {
  const int yields = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1024; ++i) {
      engine.spawn([](sim::Engine& e) -> sim::Task<> {
        co_await e.sleep(1e9);
      }(engine));
    }
    for (int p = 0; p < 4; ++p) {
      engine.spawn([](sim::Engine& e, int n) -> sim::Task<> {
        for (int i = 0; i < n; ++i) co_await e.yield();
      }(engine, yields));
    }
    const std::size_t events = engine.run_until(1.0);
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * 4 * yields);
}
BENCHMARK(BM_EngineSameInstantChurn)->Arg(4096);

// Box-query pair: the staged-object lookup over a 16x16x16 decomposition of
// a 256^3 domain (4096 objects), querying a 40^3 sub-box (27 hits). Scan is
// the pre-index baseline (nda::intersecting); Index is the Hilbert-bucketed
// grid the staging servers now use.
const nda::Dims kQueryGlobal = {256, 256, 256};
const nda::Box kQueryTarget({100, 100, 100}, {140, 140, 140});

void BM_BoxQueryScan(benchmark::State& state) {
  const auto boxes = nda::decompose_grid(kQueryGlobal, {16, 16, 16});
  for (auto _ : state) {
    auto hits = nda::intersecting(boxes, kQueryTarget);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxQueryScan);

void BM_BoxQueryIndex(benchmark::State& state) {
  const auto boxes = nda::decompose_grid(kQueryGlobal, {16, 16, 16});
  const nda::BoxIndex index = nda::BoxIndex::build(boxes);
  benchmark::DoNotOptimize(index.query(kQueryTarget).data());  // warm build
  for (auto _ : state) {
    auto hits = index.query(kQueryTarget);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxQueryIndex);

// Slab-copy pair over an n^3 overlap into a larger target. Naive is the
// pre-optimization per-coordinate odometer through the public element API;
// Strided is fill_from's row-run kernel.
void BM_SlabCopyNaive(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::zeros(src_box);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    nda::Dims coord = src_box.lb;
    for (;;) {
      dst.set(coord, src.at(coord));
      std::size_t d = coord.size();
      bool done = true;
      while (d-- > 0) {
        if (++coord[d] < src_box.ub[d]) {
          done = false;
          break;
        }
        coord[d] = src_box.lb[d];
      }
      if (done) break;
    }
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabCopyNaive)->Arg(64);

void BM_SlabCopyStrided(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::zeros(src_box);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    dst.fill_from(src);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabCopyStrided)->Arg(64);

// Synthetic-source fill: the same overlap materialized from the pure
// content function (per-row hash prefix vs per-element full chain).
void BM_SlabFillSyntheticNaive(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::synthetic(src_box, 42);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    nda::Dims coord = src_box.lb;
    for (;;) {
      dst.set(coord, src.at(coord));
      std::size_t d = coord.size();
      bool done = true;
      while (d-- > 0) {
        if (++coord[d] < src_box.ub[d]) {
          done = false;
          break;
        }
        coord[d] = src_box.lb[d];
      }
      if (done) break;
    }
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabFillSyntheticNaive)->Arg(64);

void BM_SlabFillSyntheticStrided(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::synthetic(src_box, 42);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    dst.fill_from(src);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabFillSyntheticStrided)->Arg(64);

// Tracing overhead pair: the per-span cost with no recorder bound (the
// compiled-in-but-disabled fast path every run pays) vs. the full record
// path with a live recorder. The Traced variants below repeat the hot
// kernels with a disabled span in the loop so scripts/bench.py can assert
// the off-by-default overhead stays under its budget on real work.
void BM_TraceSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    TRACE_SPAN("bench.noop", 0, 0);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

#if IMC_TRACE_ENABLED
void BM_TraceSpanEnabled(benchmark::State& state) {
  sim::Engine engine;
  trace::Recorder recorder(engine, "bench", 4096);
  trace::ScopedRecorder bind(recorder);
  std::size_t recorded = 0;
  for (auto _ : state) {
    TRACE_SPAN("bench.noop", 0, 0);
    if (++recorded == 4096) {
      // Drain below the event cap so every iteration takes the append path.
      benchmark::DoNotOptimize(recorder.take_chunk().digest);
      recorded = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled);
#endif

// Profiling overhead pair, mirroring the tracing pair above: PROF_TIMER
// with no meter bound is the fast path every run pays when IMC_PROF is
// compiled in but no collector is installed — one thread-local null check,
// no clock read. The Profiled kernel variants further down repeat the hot
// kernels with a disabled timer in the loop so scripts/bench.py can assert
// the off-by-default overhead stays under its budget on real work.
void BM_ProfTimerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    PROF_TIMER("bench.noop");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfTimerDisabled);

#if IMC_PROF_ENABLED
void BM_ProfTimerEnabled(benchmark::State& state) {
  prof::Meter meter("bench");
  prof::ScopedProf bind(meter);
  for (auto _ : state) {
    PROF_TIMER("bench.noop");
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(meter.stats().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfTimerEnabled);
#endif

void BM_BoxQueryIndexTraced(benchmark::State& state) {
  const auto boxes = nda::decompose_grid(kQueryGlobal, {16, 16, 16});
  const nda::BoxIndex index = nda::BoxIndex::build(boxes);
  benchmark::DoNotOptimize(index.query(kQueryTarget).data());  // warm build
  for (auto _ : state) {
    TRACE_SPAN("bench.box_query", 0, 0);
    auto hits = index.query(kQueryTarget);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxQueryIndexTraced);

void BM_SlabCopyStridedTraced(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::zeros(src_box);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    TRACE_SPAN("bench.slab_copy", 0, 0);
    dst.fill_from(src);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabCopyStridedTraced)->Arg(64);

// Disabled-profiling kernel variants: same hot kernels with an unbound
// PROF_TIMER in the loop. bench.py compares these against the untimed
// kernels (BM_BoxQueryIndex / BM_SlabFillSyntheticStrided) to keep the
// compiled-in-but-off cost under its <2% budget.
void BM_BoxQueryIndexProfiled(benchmark::State& state) {
  const auto boxes = nda::decompose_grid(kQueryGlobal, {16, 16, 16});
  const nda::BoxIndex index = nda::BoxIndex::build(boxes);
  benchmark::DoNotOptimize(index.query(kQueryTarget).data());  // warm build
  for (auto _ : state) {
    PROF_TIMER("bench.box_query");
    auto hits = index.query(kQueryTarget);
    benchmark::DoNotOptimize(hits.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoxQueryIndexProfiled);

void BM_SlabCopyStridedProfiled(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const nda::Box src_box({16, 16, 16}, {16 + n, 16 + n, 16 + n});
  nda::Slab src = nda::Slab::zeros(src_box);
  nda::Slab dst = nda::Slab::zeros(nda::Box({0, 0, 0}, {n + 32, n + 32, n + 32}));
  for (auto _ : state) {
    PROF_TIMER("bench.slab_copy");
    dst.fill_from(src);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src_box.volume() * 8));
}
BENCHMARK(BM_SlabCopyStridedProfiled)->Arg(64);

// Per-sweep dispatch overhead: the pool's cost of running trivial jobs —
// worker recruitment, context rebinding, ordered log/chunk flush — with no
// actual work inside. Arg is the worker count (1 = the sequential path).
void BM_SweepOverhead(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr std::size_t kJobs = 256;
  for (auto _ : state) {
    sweep::Pool(threads).run_indexed(kJobs, [](std::size_t i) {
      benchmark::DoNotOptimize(i);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_SweepOverhead)->Arg(1)->Arg(2);

// Per-world context cost, isolated from the pool: Fresh builds a new
// WorldContext (auditor ledger maps, arena chunk) for every job; Reused is
// the pool's actual pattern — one context whose run() resets the ledger and
// rewinds the arena. The gap between the two is what world reuse saves.
void BM_WorldSetupTeardownFresh(benchmark::State& state) {
  for (auto _ : state) {
    sweep::WorldContext world;
    world.run([] {
      IMC_WARN() << "world heartbeat";
      benchmark::ClobberMemory();
    });
    benchmark::DoNotOptimize(world.take_logs().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldSetupTeardownFresh);

void BM_WorldSetupTeardownReused(benchmark::State& state) {
  sweep::WorldContext world;
  for (auto _ : state) {
    world.run([] {
      IMC_WARN() << "world heartbeat";
      benchmark::ClobberMemory();
    });
    benchmark::DoNotOptimize(world.take_logs().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorldSetupTeardownReused);

// Log capture + flush cost: format N lines into a buffered sink, then
// move-flush the rope to the outer buffer. The chunked LogText append and
// splice are what keep this linear in bytes with no intermediate copies.
void BM_LogCaptureFlush(benchmark::State& state) {
  const int lines = static_cast<int>(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    ScopedLogBuffer outer;
    {
      ScopedLogBuffer inner;
      for (int i = 0; i < lines; ++i) {
        log_message(LogLevel::kWarn, "staged object advanced a step");
      }
    }  // ~inner splices its rope into outer: chunk moves, no byte copies.
    bytes = outer.take().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * lines);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LogCaptureFlush)->Arg(1024);

void BM_HilbertDistance(benchmark::State& state) {
  std::vector<std::uint32_t> point = {12345, 6789};
  std::uint64_t sum = 0;
  for (auto _ : state) {
    point[0] = (point[0] * 2654435761u) & 0x3ffff;
    point[1] = (point[1] * 40503u) & 0x3ffff;
    sum += hilbert_distance(point, 18);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_HilbertDistance);

void BM_SlabExtract(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  nda::Slab source = nda::Slab::zeros(nda::Box({0, 0}, {n, n}));
  const nda::Box sub({n / 4, n / 4}, {3 * n / 4, 3 * n / 4});
  for (auto _ : state) {
    nda::Slab piece = source.extract(sub);
    benchmark::DoNotOptimize(piece.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(sub.volume() * 8));
}
BENCHMARK(BM_SlabExtract)->Arg(64)->Arg(256);

void BM_FabricReserve(benchmark::State& state) {
  sim::Engine engine;
  hpc::Cluster cluster(hpc::titan());
  cluster.allocate_nodes(2);
  net::Fabric fabric(engine, cluster.config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fabric.reserve_transfer(cluster.node(0), cluster.node(1), 1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricReserve);

// End-to-end simulated put/get pair through DataSpaces (one writer, one
// reader, 64 KiB objects) — the per-operation cost that bounds how large a
// sweep the figure benches can run.
void BM_DataspacesPutGet(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    hpc::Cluster cluster(hpc::titan());
    net::Fabric fabric(engine, cluster.config());
    net::RdmaTransport ugni(engine, fabric, net::TransportKind::kRdmaUgni);
    dataspaces::Config config;
    config.num_servers = 1;
    config.client_base_bytes = 0;
    config.server_base_bytes = 0;
    dataspaces::DataSpaces ds(engine, cluster, ugni, config);
    bench::must_ok(ds.deploy(cluster.allocate_nodes(1)), "deploy");
    mem::ProcessMemory memory(engine, "w");
    dataspaces::DataSpaces::Client client(
        ds, net::Endpoint{1, 0, &cluster.node(cluster.allocate_nodes(1)[0])},
        memory);
    engine.spawn([](dataspaces::DataSpaces::Client& c) -> sim::Task<> {
      bench::must_ok(co_await c.init(), "client init");
      const nda::Dims dims = {64, 128};
      for (int v = 0; v < 8; ++v) {
        nda::VarDesc var{"x", dims, v};
        nda::Slab slab = nda::Slab::synthetic(nda::Box::whole(dims), 1);
        bench::must_ok(co_await c.put(var, slab), "put");
        bench::must_ok(co_await c.publish(var), "publish");
        benchmark::DoNotOptimize(co_await c.get(var, nda::Box::whole(dims)));
      }
    }(client));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DataspacesPutGet);

}  // namespace

BENCHMARK_MAIN();
