// Microbenchmarks (google-benchmark): throughput of the simulation engine
// and the hot paths of the library — useful when tuning the simulator
// itself and as a regression guard for the paper-scale sweeps.
#include <benchmark/benchmark.h>

#include "common/hilbert.h"
#include "dataspaces/dataspaces.h"
#include "hpc/cluster.h"
#include "ndarray/ndarray.h"
#include "net/fabric.h"
#include "net/transport.h"
#include "sim/engine.h"
#include "sim/sync.h"

using namespace imc;

namespace {

// Raw event throughput: N processes ping-ponging through the queue.
void BM_EngineEventThroughput(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn([](sim::Engine& e, int hops) -> sim::Task<> {
      for (int i = 0; i < hops; ++i) co_await e.sleep(1e-6);
    }(engine, hops));
    const std::size_t events = engine.run();
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1000)->Arg(100000);

void BM_MailboxRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::Queue<int> ping(engine), pong(engine);
    engine.spawn([](sim::Queue<int>& in, sim::Queue<int>& out) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) out.push(co_await in.pop());
    }(ping, pong));
    engine.spawn([](sim::Queue<int>& out, sim::Queue<int>& in) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) {
        out.push(i);
        benchmark::DoNotOptimize(co_await in.pop());
      }
    }(ping, pong));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxRoundTrip);

void BM_HilbertDistance(benchmark::State& state) {
  std::vector<std::uint32_t> point = {12345, 6789};
  std::uint64_t sum = 0;
  for (auto _ : state) {
    point[0] = (point[0] * 2654435761u) & 0x3ffff;
    point[1] = (point[1] * 40503u) & 0x3ffff;
    sum += hilbert_distance(point, 18);
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_HilbertDistance);

void BM_SlabExtract(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  nda::Slab source = nda::Slab::zeros(nda::Box({0, 0}, {n, n}));
  const nda::Box sub({n / 4, n / 4}, {3 * n / 4, 3 * n / 4});
  for (auto _ : state) {
    nda::Slab piece = source.extract(sub);
    benchmark::DoNotOptimize(piece.data().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(sub.volume() * 8));
}
BENCHMARK(BM_SlabExtract)->Arg(64)->Arg(256);

void BM_FabricReserve(benchmark::State& state) {
  sim::Engine engine;
  hpc::Cluster cluster(hpc::titan());
  cluster.allocate_nodes(2);
  net::Fabric fabric(engine, cluster.config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fabric.reserve_transfer(cluster.node(0), cluster.node(1), 1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricReserve);

// End-to-end simulated put/get pair through DataSpaces (one writer, one
// reader, 64 KiB objects) — the per-operation cost that bounds how large a
// sweep the figure benches can run.
void BM_DataspacesPutGet(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    hpc::Cluster cluster(hpc::titan());
    net::Fabric fabric(engine, cluster.config());
    net::RdmaTransport ugni(engine, fabric, net::TransportKind::kRdmaUgni);
    dataspaces::Config config;
    config.num_servers = 1;
    config.client_base_bytes = 0;
    config.server_base_bytes = 0;
    dataspaces::DataSpaces ds(engine, cluster, ugni, config);
    (void)ds.deploy(cluster.allocate_nodes(1));
    mem::ProcessMemory memory(engine, "w");
    dataspaces::DataSpaces::Client client(
        ds, net::Endpoint{1, 0, &cluster.node(cluster.allocate_nodes(1)[0])},
        memory);
    engine.spawn([](dataspaces::DataSpaces::Client& c) -> sim::Task<> {
      (void)co_await c.init();
      const nda::Dims dims = {64, 128};
      for (int v = 0; v < 8; ++v) {
        nda::VarDesc var{"x", dims, v};
        nda::Slab slab = nda::Slab::synthetic(nda::Box::whole(dims), 1);
        (void)co_await c.put(var, slab);
        (void)co_await c.publish(var);
        benchmark::DoNotOptimize(co_await c.get(var, nda::Box::whole(dims)));
      }
    }(client));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DataspacesPutGet);

}  // namespace

BENCHMARK_MAIN();
