// Figure 7: staging-memory breakdown for the Laplace workflow — how much of
// a server's footprint is the raw staged data versus the library's extra
// buffering and data-model transformation.
//
// Paper numbers reproduced: each DataSpaces server stages its clients' raw
// output plus additional buffering (total > raw); each Decaf dataflow rank
// peaks at ~7x its raw share because of the Bredala flatten/split/merge
// pipeline (1.8 GB observed vs 256 MB raw in the paper).
#include <cstdio>

#include "bench_util.h"

using namespace imc;
using workflow::MethodSel;

namespace {

workflow::Spec breakdown_spec(MethodSel method, int num_servers) {
  workflow::Spec spec;
  spec.app = workflow::AppSel::kLaplace;
  spec.method = method;
  spec.machine = hpc::cori_knl();
  spec.nsim = 64;
  spec.nana = 32;
  spec.num_servers = num_servers;
  spec.steps = 2;
  // Scaled-down per-proc size so the raw share is easy to read; the
  // breakdown ratios are size-independent.
  spec.laplace_rows = 2048;
  spec.laplace_cols_per_proc = 2048;
  return spec;
}

void breakdown(const workflow::Spec& spec,
               const workflow::RunResult& result) {
  const int num_servers = spec.num_servers;
  std::printf("\n%s (%d staging ranks):%s\n",
              std::string(to_string(spec.method)).c_str(), num_servers,
              result.ok ? "" : result.failure_summary().c_str());
  if (!result.ok) return;

  const double raw_share = static_cast<double>(spec.nsim) * 2048 * 2048 * 8 /
                           num_servers;
  auto gb = [](std::uint64_t b) { return static_cast<double>(b) / 1e9; };
  std::printf("  raw data share/server:   %8.2f GB\n", raw_share / 1e9);
  std::printf("  staged (copies of raw):  %8.2f GB\n",
              gb(result.server_tag_peaks[static_cast<int>(mem::Tag::kStaging)]));
  std::printf("  extra buffering:         %8.2f GB\n",
              gb(result.server_tag_peaks[static_cast<int>(mem::Tag::kLibrary)]));
  std::printf("  data-model transform:    %8.2f GB\n",
              gb(result.server_tag_peaks[static_cast<int>(
                  mem::Tag::kTransform)]));
  std::printf("  spatial index:           %8.2f GB\n",
              gb(result.server_tag_peaks[static_cast<int>(mem::Tag::kIndex)]));
  std::printf("  TOTAL peak/server:       %8.2f GB  (%.1fx raw)\n",
              gb(result.server_peak),
              static_cast<double>(result.server_peak) / raw_share);
}

}  // namespace

int main() {
  bench::print_banner("Figure 7", "staging memory breakdown (Laplace)");
  const std::vector<workflow::Spec> specs = {
      // DataSpaces: 16 procs per server (the paper's ratio).
      breakdown_spec(MethodSel::kDataspacesNative, 4),
      // Decaf: each dataflow rank stages the output of two Laplace procs.
      breakdown_spec(MethodSel::kDecaf, 32),
  };
  const auto results = bench::run_all(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    breakdown(specs[i], results[i]);
  }
  std::printf("\nPaper checkpoints: DataSpaces total exceeds the raw staged "
              "share due to buffering; Decaf peaks at ~7x raw.\n");
  return 0;
}
