// Figure 3: Laplace workflow end-to-end time as the per-processor problem
// size scales from 512 KB (256x256) to 128 MB (4096x4096).
//
// Paper shapes reproduced: end-to-end time grows ~proportionally with the
// problem size for every library; at 128 MB per processor, DataSpaces and
// DIMES hit Titan's registered-memory ceiling unless the staging deployment
// is widened (the paper doubled its servers; see the note below).
#include <cstdio>

#include "bench_util.h"

using namespace imc;
using workflow::MethodSel;

namespace {

const MethodSel kMethods[] = {
    MethodSel::kMpiIo,        MethodSel::kDataspacesAdios,
    MethodSel::kDataspacesNative, MethodSel::kDimesAdios,
    MethodSel::kDimesNative,  MethodSel::kFlexpath,
    MethodSel::kDecaf,
};

}  // namespace

int main() {
  bench::print_banner("Figure 3",
                      "Laplace end-to-end time vs per-processor problem size");
  const int nsim = bench::full_scale() ? 1024 : 256;  // paper: (1024, 512)
  const int nana = nsim / 2;
  std::printf("\nLaplace+MTA on titan, (%d,%d) processors\n", nsim, nana);
  std::printf("%-16s", "size/proc");
  for (auto method : kMethods) {
    std::printf(" %14s", std::string(to_string(method)).c_str());
  }
  std::printf("\n");

  // Size x method grid plus the trailing unmitigated run, fanned out on the
  // sweep pool; the table prints from the ordered results.
  const std::uint64_t kSizes[] = {256, 512, 1024, 2048, 4096};
  std::vector<workflow::Spec> specs;
  for (std::uint64_t n : kSizes) {
    for (auto method : kMethods) {
      workflow::Spec spec;
      spec.app = workflow::AppSel::kLaplace;
      spec.method = method;
      spec.machine = hpc::titan();
      spec.nsim = nsim;
      spec.nana = nana;
      spec.steps = 2;
      spec.laplace_rows = n;
      spec.laplace_cols_per_proc = n;
      // §III-B1: at the largest problem size the staging deployment must be
      // widened or the registered memory runs out (the paper's "double the
      // amount of the staging servers").
      const bool large = n >= 2048;
      if (large && (method == MethodSel::kDataspacesAdios ||
                    method == MethodSel::kDataspacesNative)) {
        spec.num_servers = 4 * std::max(1, nana / 8);
        spec.servers_per_node = 1;
      }
      if (large && (method == MethodSel::kDimesAdios ||
                    method == MethodSel::kDimesNative)) {
        spec.ranks_per_node = 8;
      }
      specs.push_back(spec);
    }
  }
  {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLaplace;
    spec.method = MethodSel::kDataspacesNative;
    spec.machine = hpc::titan();
    spec.nsim = nsim;
    spec.nana = nana;
    spec.steps = 2;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  std::size_t idx = 0;
  for (std::uint64_t n : kSizes) {
    const double mb = static_cast<double>(n * n * 8) / 1e6;
    std::printf("%4llux%-4llu %5.1fMB", static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n), mb);
    for ([[maybe_unused]] auto method : kMethods) {
      std::printf(" %14s", bench::cell(results[idx++]).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nWithout the widened deployment the 128 MB point fails:\n");
  std::printf("  DataSpaces, default servers: %s\n",
              results[idx].failure_summary().c_str());
  return 0;
}
