// Ablations: the design choices DESIGN.md calls out, each toggled in
// isolation — the three Table IV "suggested resolve" extensions (what they
// fix and what they cost) plus the coupling/deployment knobs the paper's
// Table I fixes silently (Flexpath queue_size, DataSpaces servers-per-node,
// Decaf redistribution policy).
#include <cstdio>

#include "bench_util.h"

using namespace imc;
using workflow::AppSel;
using workflow::MethodSel;
using workflow::Spec;

namespace {

void print_result(const char* label, const workflow::RunResult& result) {
  if (result.ok) {
    std::printf("  %-34s %9.2f s end-to-end, %8.3f s staging/rank\n", label,
                result.end_to_end, result.sim_staging + result.ana_staging);
  } else {
    std::printf("  %-34s %s\n", label, result.failure_summary().c_str());
  }
}

void ablate_rdma_retry() {
  std::printf("\n[1] RDMA wait-and-retry (Table IV resolve) — Laplace "
              "128 MB/proc, Titan, 4 servers:\n");
  Spec spec;
  spec.app = AppSel::kLaplace;
  spec.method = MethodSel::kDataspacesNative;
  spec.machine = hpc::titan();
  spec.nsim = 32;
  spec.nana = 16;
  spec.steps = 3;
  spec.num_servers = 4;
  spec.servers_per_node = 1;
  std::vector<Spec> specs = {spec};
  spec.rdma_wait_retry = true;
  specs.push_back(spec);
  const auto results = bench::run_all(specs);
  print_result("fail-fast (the real library)", results[0]);
  print_result("wait-and-retry", results[1]);
}

void ablate_socket_pool() {
  std::printf("\n[2] Socket pooling (Table IV resolve) — LAMMPS, Titan, "
              "sockets, 512 descriptors/node:\n");
  Spec spec;
  spec.app = AppSel::kLammps;
  spec.method = MethodSel::kDataspacesNative;
  spec.machine = hpc::titan();
  spec.machine.socket_descriptors_per_node = 512;
  spec.nsim = 256;
  spec.nana = 128;
  spec.steps = 2;
  spec.transport = Spec::Transport::kSockets;
  std::vector<Spec> specs = {spec};
  spec.socket_pooling = true;
  specs.push_back(spec);
  const auto results = bench::run_all(specs);
  print_result("per-connection sockets", results[0]);
  const auto& pooled = results[1];
  print_result("pooled (2 streams/node pair)", pooled);
  if (pooled.ok) {
    std::printf("  %-34s %d descriptors at peak (vs depletion above)\n", "",
                pooled.socket_peak);
  }
}

void ablate_drc_metering() {
  std::printf("\n[3] DRC metering (Table IV resolve) — LAMMPS, Cori, "
              "capacity lowered to 64:\n");
  Spec spec;
  spec.app = AppSel::kLammps;
  spec.method = MethodSel::kDataspacesNative;
  spec.machine = hpc::cori_knl();
  spec.machine.drc_capacity = 64;
  spec.nsim = 128;
  spec.nana = 64;
  spec.steps = 2;
  std::vector<Spec> specs = {spec};
  spec.drc_metered = true;
  specs.push_back(spec);
  const auto results = bench::run_all(specs);
  print_result("load-shedding DRC (the real service)", results[0]);
  print_result("metered DRC", results[1]);
}

void ablate_queue_size() {
  std::printf("\n[4] Flexpath queue_size (Table I fixes 1) — LAMMPS, Titan, "
              "analytics 3x slower than the simulation:\n");
  const int kQueueSizes[] = {1, 2, 4};
  std::vector<Spec> specs;
  for (int queue_size : kQueueSizes) {
    Spec spec;
    spec.app = AppSel::kLammps;
    spec.method = MethodSel::kFlexpath;
    spec.machine = hpc::titan();
    spec.nsim = 16;
    spec.nana = 2;  // few readers processing a lot: analytics-bound
    spec.steps = 4;
    spec.flexpath_queue_size = queue_size;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);
  std::size_t idx = 0;
  for (int queue_size : kQueueSizes) {
    char label[64];
    std::snprintf(label, sizeof(label), "queue_size=%d", queue_size);
    const auto& result = results[idx++];
    if (result.ok) {
      std::printf("  %-34s sim finished %7.2f s, workflow %7.2f s, "
                  "writer peak %4.0f MB\n",
                  label, result.sim_span, result.end_to_end,
                  static_cast<double>(result.sim_rank_peak) / 1e6);
    } else {
      std::printf("  %-34s %s\n", label, result.failure_summary().c_str());
    }
  }
  std::printf("  (deeper queues decouple the simulation from slow analytics "
              "at the price of more staged memory per writer)\n");
}

void ablate_servers_per_node() {
  std::printf("\n[5] DataSpaces servers per staging node (paper runs 2) — "
              "Laplace 64 MB/proc, Titan, 8 servers:\n");
  const int kSpn[] = {1, 2, 4};
  std::vector<Spec> specs;
  for (int spn : kSpn) {
    Spec spec;
    spec.app = AppSel::kLaplace;
    spec.method = MethodSel::kDataspacesNative;
    spec.machine = hpc::titan();
    spec.nsim = 64;
    spec.nana = 32;
    spec.steps = 2;
    spec.num_servers = 8;
    spec.servers_per_node = spn;
    spec.laplace_rows = 4096;
    spec.laplace_cols_per_proc = 2048;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);
  std::size_t idx = 0;
  for (int spn : kSpn) {
    char label[64];
    std::snprintf(label, sizeof(label), "servers_per_node=%d", spn);
    print_result(label, results[idx++]);
  }
  std::printf("  (fewer servers per node buys registered-memory headroom at "
              "the cost of more staging nodes)\n");
}

void ablate_decaf_servers_density() {
  std::printf("\n[6] Decaf dataflow width vs pipeline depth — Laplace, "
              "Titan, (64,32):\n");
  // Complements Fig. 11: with very few dataflow ranks the 7x Bredala
  // pipeline concentrates and can exceed node DRAM — the Table IV
  // out-of-main-memory scenario in ablation form.
  const int kRanks[] = {4, 8, 32};
  std::vector<Spec> specs;
  for (int servers : kRanks) {
    Spec spec;
    spec.app = AppSel::kLaplace;
    spec.method = MethodSel::kDecaf;
    spec.machine = hpc::titan();
    spec.nsim = 64;
    spec.nana = 32;
    spec.num_servers = servers;
    spec.steps = 2;
    spec.laplace_rows = 4096;
    spec.laplace_cols_per_proc = 2048;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);
  std::size_t idx = 0;
  for (int servers : kRanks) {
    char label[64];
    std::snprintf(label, sizeof(label), "dataflow ranks=%d", servers);
    print_result(label, results[idx++]);
  }
}

}  // namespace

int main() {
  bench::print_banner("Ablations",
                      "design choices and Table IV resolves, toggled");
  ablate_rdma_retry();
  ablate_socket_pool();
  ablate_drc_metering();
  ablate_queue_size();
  ablate_servers_per_node();
  ablate_decaf_servers_density();
  return 0;
}
