// Figure 4: the synthetic Cray RDMA acquire/release test on Titan — how
// many registrations of a given size can be held concurrently.
//
// Paper shape reproduced: below 512 KB the memory-handler count (3675)
// binds; above it the registered-memory capacity (1843 MB/node) binds, so
// the concurrency falls off as capacity/size.
#include <cstdio>

#include "bench_util.h"
#include "hpc/cluster.h"

using namespace imc;

int main() {
  bench::print_banner(
      "Figure 4", "max concurrent RDMA registrations vs request size (Titan)");
  const auto machine = hpc::titan();
  std::printf("\n%-12s %22s %22s\n", "request", "max concurrent",
              "binding constraint");
  // Each request size probes its own RdmaPool — independent jobs, fanned
  // out on the sweep pool and printed in submission order.
  const std::vector<std::uint64_t> kSizesKib = {
      4, 16, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144};
  std::vector<std::function<std::pair<int, ErrorCode>()>> jobs;
  for (std::uint64_t kib : kSizesKib) {
    jobs.emplace_back([kib, &machine] {
      hpc::RdmaPool pool(machine.rdma_memory_per_node,
                         machine.rdma_handlers_per_node);
      const std::uint64_t size = kib * kKiB;
      int count = 0;
      Status last;
      for (;;) {
        last = pool.register_memory(size);
        if (!last.is_ok()) break;
        ++count;
      }
      return std::pair<int, ErrorCode>{count, last.code()};
    });
  }
  const auto results = sweep::Pool().run_ordered(std::move(jobs));
  for (std::size_t i = 0; i < kSizesKib.size(); ++i) {
    const auto& [count, code] = results[i];
    std::printf("%8llu KiB %22d %22s\n",
                static_cast<unsigned long long>(kSizesKib[i]), count,
                std::string(to_string(code)).c_str());
  }
  std::printf("\nCrossover at ~512 KiB (1843 MiB / 3675 handlers = 513 KiB), "
              "as in the paper.\n");
  return 0;
}
