// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows/series of one paper artifact. Default sweeps
// are sized to finish in seconds on one core; set IMC_FULL_SCALE=1 to run
// the paper's full processor counts (minutes).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.h"
#include "workflow/workflow.h"

namespace imc::bench {

inline bool full_scale() {
  const char* env = std::getenv("IMC_FULL_SCALE");
  return env != nullptr && env[0] == '1';
}

// (nsim, nana) ladder from the paper's x-axis (Fig. 2). Default stops at
// (512, 256); full scale continues to (8192, 4096).
inline std::vector<std::pair<int, int>> scale_ladder() {
  std::vector<std::pair<int, int>> scales = {
      {32, 16}, {64, 32}, {128, 64}, {256, 128}, {512, 256}};
  if (full_scale()) {
    scales.push_back({1024, 512});
    scales.push_back({2048, 1024});
    scales.push_back({4096, 2048});
    scales.push_back({8192, 4096});
  }
  return scales;
}

inline const char* header_rule() {
  return "-----------------------------------------------------------------"
         "-----------";
}

inline void print_banner(const char* artifact, const char* description) {
  std::printf("%s\n", header_rule());
  std::printf("%s — %s\n", artifact, description);
  std::printf("(default sweep%s; IMC_FULL_SCALE=1 for the paper's full "
              "ladder)\n",
              full_scale() ? " overridden: FULL" : "");
  std::printf("%s\n", header_rule());
}

// Formats a run outcome for a table cell: seconds or the failure class.
inline std::string cell(const workflow::RunResult& result) {
  if (result.ok) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.2f", result.end_to_end);
    return buf;
  }
  std::string summary = result.failure_summary();
  // Compress to the error token.
  for (const char* token :
       {"OUT_OF_RDMA_MEMORY", "OUT_OF_RDMA_HANDLERS", "OUT_OF_SOCKETS",
        "OUT_OF_MEMORY", "DRC_OVERLOAD", "DIMENSION_OVERFLOW",
        "CONNECTION_FAILED", "PERMISSION_DENIED"}) {
    if (summary.find(token) != std::string::npos) return std::string("  ") + token;
  }
  return "    FAILED";
}

}  // namespace imc::bench
