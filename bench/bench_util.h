// Shared helpers for the figure/table reproduction binaries.
//
// Each bench prints the rows/series of one paper artifact. Default sweeps
// are sized to finish in seconds on one core; set IMC_FULL_SCALE=1 to run
// the paper's full processor counts (minutes).
//
// Independent runs fan out across IMC_THREADS worker threads (sweep::Pool):
// a bench first collects the Specs of a ladder, runs them all with
// run_all(), then prints from the ordered results — so stdout is
// byte-identical at every thread count and the per-bench sha256
// fingerprints in BENCH_perf.json never move.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/units.h"
#include "sweep/sweep.h"
#include "workflow/workflow.h"

namespace imc::bench {

inline bool full_scale() {
  return env::flag_or_die("IMC_FULL_SCALE", false);
}

// Aborts the bench when a setup or staging step fails: timing a loop whose
// puts silently failed would report throughput for work that never
// happened. Benches are entry points, so dying here is legitimate.
inline void must_ok(const Status& status, const char* what) {
  if (status.is_ok()) return;
  std::fprintf(stderr, "bench: %s failed: %s\n", what,
               status.to_string().c_str());
  std::abort();
}

// Runs every spec through workflow::run on the sweep pool and returns the
// results in submission order.
inline std::vector<workflow::RunResult> run_all(
    const std::vector<workflow::Spec>& specs) {
  std::vector<std::function<workflow::RunResult()>> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) {
    jobs.emplace_back([&spec] { return workflow::run(spec); });
  }
  return sweep::Pool().run_ordered(std::move(jobs));
}

// (nsim, nana) ladder from the paper's x-axis (Fig. 2). Default stops at
// (512, 256); full scale continues to (8192, 4096).
inline std::vector<std::pair<int, int>> scale_ladder() {
  std::vector<std::pair<int, int>> scales = {
      {32, 16}, {64, 32}, {128, 64}, {256, 128}, {512, 256}};
  if (full_scale()) {
    scales.push_back({1024, 512});
    scales.push_back({2048, 1024});
    scales.push_back({4096, 2048});
    scales.push_back({8192, 4096});
  }
  return scales;
}

inline const char* header_rule() {
  return "-----------------------------------------------------------------"
         "-----------";
}

inline void print_banner(const char* artifact, const char* description) {
  // Validate the env knobs up front: a garbage IMC_THREADS must fail the
  // bench at startup even if it never fans a sweep out. The value itself
  // is irrelevant here — the call dies on bad input, so discarding it
  // loses nothing. imc-analyze: allow(discarded-result)
  (void)sweep::default_threads();
  std::printf("%s\n", header_rule());
  std::printf("%s — %s\n", artifact, description);
  std::printf("(default sweep%s; IMC_FULL_SCALE=1 for the paper's full "
              "ladder)\n",
              full_scale() ? " overridden: FULL" : "");
  std::printf("%s\n", header_rule());
}

// Formats a run outcome for a table cell: seconds or the failure class.
inline std::string cell(const workflow::RunResult& result) {
  if (result.ok) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%10.2f", result.end_to_end);
    return buf;
  }
  std::string summary = result.failure_summary();
  // Compress to the error token.
  for (const char* token :
       {"OUT_OF_RDMA_MEMORY", "OUT_OF_RDMA_HANDLERS", "OUT_OF_SOCKETS",
        "OUT_OF_MEMORY", "DRC_OVERLOAD", "DIMENSION_OVERFLOW",
        "CONNECTION_FAILED", "PERMISSION_DENIED"}) {
    if (summary.find(token) != std::string::npos) return std::string("  ") + token;
  }
  return "    FAILED";
}

}  // namespace imc::bench
