// Figure 6: staging-server memory of the Laplace workflow vs per-processor
// problem size — the cost of the Hilbert-SFC index.
//
// Paper shape reproduced: DataSpaces server memory grows quadratically with
// the problem size because the SFC index space is a 2^k cube sized by the
// longest global dimension (at 4096x2048 per proc with 16 procs/server the
// paper measured ~6 GB/server); DIMES servers stay flat (~154 MB) because
// the index lives at the clients and the servers hold only metadata.
#include <cstdio>

#include "bench_util.h"
#include "dataspaces/regions.h"

using namespace imc;
using workflow::MethodSel;

int main() {
  bench::print_banner("Figure 6",
                      "server memory vs problem size (SFC index cost)");
  // Paper setting: 64 Laplace processors, 16 per DataSpaces server.
  const int nsim = 64, nana = 32, servers = 4;
  std::printf("\nLaplace, %d procs, %d DataSpaces servers (16 procs each)\n",
              nsim, servers);
  std::printf("%-18s %16s %16s %16s %16s\n", "size/proc", "DS server (GB)",
              "DS index (GB)", "DS staged (GB)", "DIMES server (GB)");

  // DS + DIMES pairs for every size, fanned out together.
  const std::uint64_t kCols[] = {256, 512, 1024, 2048, 4096};
  std::vector<workflow::Spec> specs;
  for (std::uint64_t cols : kCols) {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLaplace;
    spec.method = MethodSel::kDataspacesNative;
    spec.machine = hpc::cori_knl();  // 96 GB nodes hold the big index
    spec.nsim = nsim;
    spec.nana = nana;
    spec.num_servers = servers;
    spec.servers_per_node = 1;
    spec.steps = 2;
    spec.laplace_rows = 4096;
    spec.laplace_cols_per_proc = cols;
    specs.push_back(spec);

    spec.method = MethodSel::kDimesNative;
    spec.num_servers = 4;
    specs.push_back(spec);
  }
  const auto results = bench::run_all(specs);

  std::size_t idx = 0;
  for (std::uint64_t cols : kCols) {
    const auto& ds = results[idx++];
    const auto& dimes = results[idx++];

    const double mb = static_cast<double>(4096 * cols * 8) / 1e6;
    std::printf("4096x%-6llu %4.0fMB", static_cast<unsigned long long>(cols),
                mb);
    if (ds.ok) {
      std::printf(" %16.2f %16.2f %16.2f",
                  static_cast<double>(ds.server_peak) / 1e9,
                  static_cast<double>(
                      ds.server_tag_peaks[static_cast<int>(mem::Tag::kIndex)]) /
                      1e9,
                  static_cast<double>(ds.server_tag_peaks[static_cast<int>(
                      mem::Tag::kStaging)]) /
                      1e9);
    } else {
      std::printf(" %16s %16s %16s", ds.failure_summary().c_str(), "-", "-");
    }
    if (dimes.ok) {
      std::printf(" %16.3f\n", static_cast<double>(dimes.server_peak) / 1e9);
    } else {
      std::printf(" %16s\n", dimes.failure_summary().c_str());
    }
    std::fflush(stdout);
  }

  // The analytic index model at the paper's exact calibration point.
  const std::uint64_t calib =
      dataspaces::index_bytes_per_server({4096, 64ull * 2048}, 4);
  std::printf("\nSFC model at the paper's data point (4096x2048/proc, 64 "
              "procs, 4 servers): %.2f GB/server (paper: ~6 GB)\n",
              static_cast<double>(calib) / 1e9);
  return 0;
}
