#!/usr/bin/env bash
# CI entry point: hardened Debug build (ASan+UBSan, -Werror), full test
# suite (includes the determinism harness, leak auditors, style lint, and
# the imc-analyze semantic gate as ctest entries), plus clang-tidy over
# changed files when available.
#
# Usage: scripts/ci.sh [build-dir]     (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

echo "==> configure (Debug, ASan+UBSan, -Werror)"
cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DIMC_CHECK=ON \
  -DIMC_SANITIZE="address;undefined" \
  -DCMAKE_CXX_FLAGS="-Werror" \
  ${CMAKE_GENERATOR:+-G "$CMAKE_GENERATOR"}

echo "==> build"
cmake --build "$build" -j "$(nproc)"

echo "==> test (unit + determinism harness + leak audits + lint)"
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure

echo "==> style lint (standalone, full tree)"
python3 "$repo/scripts/lint.py" "$repo/src" "$repo/bench" "$repo/tests" \
  "$repo/examples"

# Semantic gate: imc-analyze enforces the determinism & coroutine-safety
# invariants (see DESIGN.md §12) against the committed baseline, and emits
# a SARIF report for code-scanning upload.
echo "==> imc-analyze (baseline gate + SARIF export)"
python3 "$repo/scripts/imc-analyze" \
  --baseline "$repo/analyze-baseline.json" \
  --sarif "$build/imc-analyze.sarif" \
  "$repo/src" "$repo/bench" "$repo/tests" "$repo/examples"

# clang-tidy on files changed relative to the default branch; advisory if the
# toolchain only ships gcc.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> clang-tidy (changed files)"
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" rev-list --max-parents=0 HEAD | tail -1)"
  changed="$(git -C "$repo" diff --name-only "$base" -- 'src/*.cpp' || true)"
  if [ -n "$changed" ]; then
    (cd "$repo" && clang-tidy -p "$build" $changed)
  else
    echo "no changed sources"
  fi
else
  echo "==> clang-tidy not installed; skipping (gcc-only toolchain)"
fi

# ThreadSanitizer pass over the sweep pool: the scenario fan-out and the
# determinism harness run their worker threads under TSan, which would flag
# any cross-world shared state the per-thread bindings missed.
echo "==> TSan (sweep + check tests)"
tsan_build="$repo/build-tsan"
cmake -B "$tsan_build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DIMC_CHECK=ON \
  -DIMC_SANITIZE="thread" \
  ${CMAKE_GENERATOR:+-G "$CMAKE_GENERATOR"}
cmake --build "$tsan_build" -j "$(nproc)" --target test_sweep test_check
IMC_THREADS=8 "$tsan_build/tests/test_sweep"
IMC_THREADS=8 "$tsan_build/tests/test_check"

# Release-mode bench smoke: builds the benches without sanitizers, runs the
# hot-path microbench subset plus two fast scenarios, and asserts the run
# emits valid JSON with every derived speedup present. Time-bounded by the
# reduced --benchmark_min_time and per-bench timeouts inside bench.py.
# The gate runs twice — sequential and on the sweep pool — and the scenario
# stdout hashes must not depend on the thread count.
echo "==> bench smoke (Release, scripts/bench.py --smoke, IMC_THREADS=1)"
IMC_THREADS=1 python3 "$repo/scripts/bench.py" --smoke \
  --build-dir "$repo/build-bench-smoke" \
  --out "$repo/build-bench-smoke/BENCH_smoke_t1.json"

echo "==> bench smoke (Release, scripts/bench.py --smoke, IMC_THREADS=2)"
IMC_THREADS=2 python3 "$repo/scripts/bench.py" --smoke \
  --build-dir "$repo/build-bench-smoke" \
  --out "$repo/build-bench-smoke/BENCH_smoke_t2.json"

echo "==> bench smoke: diff stdout hashes across thread counts"
python3 - "$repo/build-bench-smoke/BENCH_smoke_t1.json" \
          "$repo/build-bench-smoke/BENCH_smoke_t2.json" <<'EOF'
import json, sys
a, b = (json.load(open(p))["scenarios"] for p in sys.argv[1:3])
bad = [n for n in a if a[n]["stdout_sha256"] != b[n]["stdout_sha256"]]
if bad:
    sys.exit(f"FAIL: scenario stdout depends on IMC_THREADS: {bad}")
print("stdout hashes identical at IMC_THREADS=1 and 2:",
      ", ".join(sorted(a)))
EOF

# Sweep perf gate: the pool must actually speed the smoke sweep up. The two
# smoke runs above produced sequential (t1) and pooled (t2) wall clocks for
# the same scenarios; their ratio is the measured speedup. The verdict is
# history-aware (imc-report gate): it hard-fails only when the committed
# BENCH_history.json proves a same-host/same-core-count run met the 1.3x
# floor before — an unknown host, a single core, a host class that never
# met the floor, or IMC_PERF_GATE_SOFT=1 all degrade to a warning.
echo "==> sweep perf gate (history-aware, smoke sweep_speedup at IMC_THREADS=2)"
speedup="$(python3 - "$repo/build-bench-smoke/BENCH_smoke_t1.json" \
                     "$repo/build-bench-smoke/BENCH_smoke_t2.json" <<'EOF'
import json, sys
a, b = (json.load(open(p))["scenarios"] for p in sys.argv[1:3])
seq = sum(r["wall_seconds"] for r in a.values())
par = sum(r["wall_seconds"] for r in b.values())
print(f"{seq / par if par > 0 else 0.0:.3f}")
EOF
)"
echo "smoke sweep_speedup at IMC_THREADS=2: $speedup"
python3 "$repo/scripts/imc-report.py" gate --speedup "$speedup" --threads 2 \
  --history "$repo/BENCH_history.json"

# Trace smoke: a Fig. 2 run with IMC_TRACE must produce a Perfetto-loadable
# export carrying spans from the fabric, memory, DataSpaces, and workflow
# layers, and the metric digest chain must not depend on the sweep width.
# The event cap bounds the artifact size; it is part of the digest input, so
# both runs use the same cap.
echo "==> trace smoke (IMC_TRACE export + thread-count digest diff)"
smoke="$repo/build-bench-smoke"
cmake --build "$smoke" -j "$(nproc)" --target bench_fig2_end_to_end
IMC_THREADS=1 IMC_TRACE_EVENTS=4096 IMC_TRACE="$smoke/fig2.trace.t1.json" \
  "$smoke/bench/bench_fig2_end_to_end" >/dev/null
IMC_THREADS=2 IMC_TRACE_EVENTS=4096 IMC_TRACE="$smoke/fig2.trace.t2.json" \
  "$smoke/bench/bench_fig2_end_to_end" >/dev/null
python3 "$repo/scripts/check_trace.py" "$smoke/fig2.trace.t1.json" \
  --require fabric --require mem --require ds --require workflow
d1="$(python3 "$repo/scripts/check_trace.py" "$smoke/fig2.trace.t1.json" \
  --print-digest)"
d2="$(python3 "$repo/scripts/check_trace.py" "$smoke/fig2.trace.t2.json" \
  --print-digest)"
if [ "$d1" != "$d2" ]; then
  echo "FAIL: trace digest depends on IMC_THREADS: $d1 vs $d2" >&2
  exit 1
fi
echo "trace digests identical at IMC_THREADS=1 and 2: $d1"
rm -f "$smoke/fig2.trace.t1.json" "$smoke/fig2.trace.t2.json"

# Prof digest-exclusion gate: IMC_PROF is observability, never input. A
# Fig. 2 run with the profiler on must leave stdout byte-identical and the
# trace digest chain unchanged, while the trace gains a digest-free "prof"
# meta chunk and the standalone report materialises (check_trace.py proves
# the chunk carries no digest field and that the chain recomputes from the
# runs alone). The width-2/4/8 prof reports feed the imc-report artifact.
echo "==> prof digest-exclusion gate (IMC_PROF on/off: stdout + trace digest)"
IMC_THREADS=2 "$smoke/bench/bench_fig2_end_to_end" >"$smoke/fig2.plain.out"
IMC_THREADS=2 IMC_TRACE_EVENTS=4096 IMC_TRACE="$smoke/fig2.trace.prof.json" \
  IMC_PROF="$smoke/fig2.prof.w2.json" \
  "$smoke/bench/bench_fig2_end_to_end" >"$smoke/fig2.prof.out"
if ! cmp -s "$smoke/fig2.plain.out" "$smoke/fig2.prof.out"; then
  echo "FAIL: fig2 stdout depends on IMC_PROF" >&2
  diff "$smoke/fig2.plain.out" "$smoke/fig2.prof.out" >&2 || true
  exit 1
fi
echo "fig2 stdout identical with IMC_PROF on and off"
python3 "$repo/scripts/check_trace.py" "$smoke/fig2.trace.prof.json" \
  --require-meta prof
dp="$(python3 "$repo/scripts/check_trace.py" "$smoke/fig2.trace.prof.json" \
  --print-digest)"
if [ "$dp" != "$d1" ]; then
  echo "FAIL: trace digest depends on IMC_PROF: $dp vs $d1" >&2
  exit 1
fi
echo "trace digest unchanged with IMC_PROF on: $dp"
if [ ! -s "$smoke/fig2.prof.w2.json" ]; then
  echo "FAIL: IMC_PROF did not write a report" >&2
  exit 1
fi
rm -f "$smoke/fig2.trace.prof.json" "$smoke/fig2.plain.out" \
      "$smoke/fig2.prof.out"

# Dashboard artifact: fig2 prof reports at sweep widths 2/4/8 merged with
# the committed perf baseline and per-host history into imc-report.md
# (uploaded by the workflow; also the local profiling entry point).
echo "==> imc-report (markdown dashboard artifact)"
for w in 4 8; do
  IMC_THREADS=$w IMC_PROF="$smoke/fig2.prof.w$w.json" \
    "$smoke/bench/bench_fig2_end_to_end" >/dev/null
done
python3 "$repo/scripts/imc-report.py" report \
  --perf "$repo/BENCH_perf.json" \
  --prof "fig2-w2=$smoke/fig2.prof.w2.json" \
  --prof "fig2-w4=$smoke/fig2.prof.w4.json" \
  --prof "fig2-w8=$smoke/fig2.prof.w8.json" \
  --history "$repo/BENCH_history.json" \
  --out "$build/imc-report.md"

# Chaos smoke: the fault-injection sweep must be deterministic two ways.
# Across IMC_THREADS the whole stdout (tables, recovery + durability lines,
# digest) and the trace digest are byte-identical; across IMC_SCHEDULE
# tie-break policies the chaos-invariant-digest line (outcomes + recovery
# counts + durability counts + sorted failures) is byte-identical while raw
# span timings may legitimately shift (see src/check/check.h on
# same-instant contention). bench_ext_chaos includes the replicated
# durability sweep (factor x crash count, DESIGN.md §15), so this one gate
# also pins replica placement, failover routing, and resilver copy counts
# against schedule and thread-count perturbation, and the trace must carry
# the fault.* and repl.* spans/counters the Perfetto walkthrough documents.
echo "==> chaos smoke (bench_ext_chaos: thread/schedule determinism + fault trace)"
cmake --build "$smoke" -j "$(nproc)" --target bench_ext_chaos
chaos="$smoke/bench/bench_ext_chaos"
IMC_THREADS=1 IMC_TRACE_EVENTS=4096 IMC_TRACE="$smoke/chaos.trace.t1.json" \
  "$chaos" >"$smoke/chaos.t1.out"
IMC_THREADS=2 IMC_TRACE_EVENTS=4096 IMC_TRACE="$smoke/chaos.trace.t2.json" \
  "$chaos" >"$smoke/chaos.t2.out"
if ! cmp -s "$smoke/chaos.t1.out" "$smoke/chaos.t2.out"; then
  echo "FAIL: chaos stdout depends on IMC_THREADS" >&2
  diff "$smoke/chaos.t1.out" "$smoke/chaos.t2.out" >&2 || true
  exit 1
fi
echo "chaos stdout identical at IMC_THREADS=1 and 2"
python3 "$repo/scripts/check_trace.py" "$smoke/chaos.trace.t1.json" \
  --require fault --require workflow --require repl
c1="$(python3 "$repo/scripts/check_trace.py" "$smoke/chaos.trace.t1.json" \
  --print-digest)"
c2="$(python3 "$repo/scripts/check_trace.py" "$smoke/chaos.trace.t2.json" \
  --print-digest)"
if [ "$c1" != "$c2" ]; then
  echo "FAIL: chaos trace digest depends on IMC_THREADS: $c1 vs $c2" >&2
  exit 1
fi
echo "chaos trace digests identical at IMC_THREADS=1 and 2: $c1"
fifo_digest="$(grep '^chaos-invariant-digest:' "$smoke/chaos.t1.out")"
for sched in lifo shuffle; do
  sched_digest="$(IMC_SCHEDULE=$sched IMC_THREADS=2 "$chaos" |
    grep '^chaos-invariant-digest:')"
  if [ "$fifo_digest" != "$sched_digest" ]; then
    echo "FAIL: chaos outcomes depend on IMC_SCHEDULE=$sched:" \
         "$fifo_digest vs $sched_digest" >&2
    exit 1
  fi
done
echo "chaos invariant digest identical across fifo/lifo/shuffle:" \
     "${fifo_digest#chaos-invariant-digest: }"
rm -f "$smoke/chaos.trace.t1.json" "$smoke/chaos.trace.t2.json" \
      "$smoke/chaos.t1.out" "$smoke/chaos.t2.out"

# TSan over the chaos sweep: fault injection threads per-world injector
# state through the same thread-local bindings as audit/trace; the chaos
# run on the sweep pool is where a missed binding would race.
echo "==> TSan (chaos sweep)"
cmake --build "$tsan_build" -j "$(nproc)" --target bench_ext_chaos
IMC_THREADS=8 "$tsan_build/bench/bench_ext_chaos" >/dev/null

echo "==> CI OK"
