#!/usr/bin/env bash
# CI entry point: hardened Debug build (ASan+UBSan, -Werror), full test
# suite (includes the determinism harness, leak auditors, and lint.py as
# ctest entries), plus clang-tidy over changed files when available.
#
# Usage: scripts/ci.sh [build-dir]     (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"

echo "==> configure (Debug, ASan+UBSan, -Werror)"
cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DIMC_CHECK=ON \
  -DIMC_SANITIZE="address;undefined" \
  -DCMAKE_CXX_FLAGS="-Werror" \
  ${CMAKE_GENERATOR:+-G "$CMAKE_GENERATOR"}

echo "==> build"
cmake --build "$build" -j "$(nproc)"

echo "==> test (unit + determinism harness + leak audits + lint)"
ctest --test-dir "$build" -j "$(nproc)" --output-on-failure

echo "==> lint (standalone, full tree)"
python3 "$repo/scripts/lint.py" "$repo/src"

# clang-tidy on files changed relative to the default branch; advisory if the
# toolchain only ships gcc.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "==> clang-tidy (changed files)"
  base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
          git -C "$repo" rev-list --max-parents=0 HEAD | tail -1)"
  changed="$(git -C "$repo" diff --name-only "$base" -- 'src/*.cpp' || true)"
  if [ -n "$changed" ]; then
    (cd "$repo" && clang-tidy -p "$build" $changed)
  else
    echo "no changed sources"
  fi
else
  echo "==> clang-tidy not installed; skipping (gcc-only toolchain)"
fi

# Release-mode bench smoke: builds the benches without sanitizers, runs the
# hot-path microbench subset plus two fast scenarios, and asserts the run
# emits valid JSON with every derived speedup present. Time-bounded by the
# reduced --benchmark_min_time and per-bench timeouts inside bench.py.
echo "==> bench smoke (Release, scripts/bench.py --smoke)"
python3 "$repo/scripts/bench.py" --smoke --build-dir "$repo/build-bench-smoke"

echo "==> CI OK"
