#!/usr/bin/env python3
"""Validator for imc::trace Chrome/Perfetto exports.

Checks that a trace written via IMC_TRACE=<path> is well-formed: valid
JSON, every traceEvent one of the phases the exporter emits (M metadata /
X complete span / C counter) with integer non-negative ts/dur and pid/tid
present, and an "imc" summary block carrying the schema tag, per-run
digests, and the chain digest.

The "imc"."meta" array (diagnostic wall-clock chunks: prof resource
accounting, sweep-pool occupancy) is validated for well-formedness and for
digest exclusion: meta entries must carry no digest field, and the chain
digest must recompute exactly from the runs' digests alone — proof that no
meta record leaks into the digest-bearing sections.

Usage:
  scripts/check_trace.py TRACE.json [--require CAT ...]
                         [--require-meta LABEL ...] [--print-digest]

--require CAT fails unless at least one span carries that category (the
span-name prefix before the first dot: fabric, ds, workflow, ...), a
counter does (mem gauges export as ph=C counters, not spans), or a run's
aggregated metrics map does — the metrics maps fold every event, so a
category whose spans land beyond the IMC_TRACE_EVENTS cap (e.g. repl
resilver spans late in a long chaos run) still proves its presence there.
--require-meta LABEL fails unless a meta chunk with that label exists
(e.g. `--require-meta prof` after an IMC_PROF run).
--print-digest writes the chain digest to stdout for cheap shell diffs.
"""

import argparse
import json
import sys

SCHEMA = "imc-trace-v1"
DIGEST_HEX_LEN = 16
FNV_OFFSET = 1469598103934665603
FNV_PRIME = 1099511628211
STAT_KINDS = ("c", "g", "h")
STAT_FIELDS = ("kind", "count", "sum", "min", "max", "last")


def fnv1a(text, seed=FNV_OFFSET):
    """64-bit FNV-1a, matching trace::fnv1a (src/trace/trace.cpp)."""
    h = seed
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_events(events):
    """Returns (error, span_count, categories_seen)."""
    categories = set()
    spans = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = event.get("ph")
        if ph not in ("M", "X", "C"):
            return f"{where}: unexpected ph {ph!r}", spans, categories
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                return f"{where}: missing integer {key}", spans, categories
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            return f"{where}: ts must be a non-negative integer", \
                spans, categories
        if "name" not in event:
            return f"{where}: missing name", spans, categories
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                return f"{where}: dur must be a non-negative integer", \
                    spans, categories
            spans += 1
            categories.add(event.get("cat", ""))
        else:  # C
            args = event.get("args", {})
            if "value" not in args:
                return f"{where}: counter without args.value", \
                    spans, categories
            categories.add(event["name"].split(".", 1)[0])
    return None, spans, categories


def check_imc_block(imc):
    if imc.get("schema") != SCHEMA:
        return f"imc.schema is {imc.get('schema')!r}, want {SCHEMA!r}"
    digest = imc.get("digest")
    if not isinstance(digest, str) or len(digest) != DIGEST_HEX_LEN:
        return "imc.digest missing or not a 16-hex-char string"
    runs = imc.get("runs")
    if not isinstance(runs, list):
        return "imc.runs missing"
    for i, run in enumerate(runs):
        run_digest = run.get("digest")
        if not isinstance(run_digest, str) or \
                len(run_digest) != DIGEST_HEX_LEN:
            return f"imc.runs[{i}].digest missing or malformed"
        if "label" not in run or "metrics" not in run:
            return f"imc.runs[{i}] missing label/metrics"
    return None


def check_metrics_map(metrics, where):
    if not isinstance(metrics, dict):
        return f"{where}.metrics is not an object"
    for name, stat in metrics.items():
        if not isinstance(stat, dict):
            return f"{where}.metrics[{name!r}] is not an object"
        missing = [f for f in STAT_FIELDS if f not in stat]
        if missing:
            return f"{where}.metrics[{name!r}] missing {missing}"
        if stat["kind"] not in STAT_KINDS:
            return f"{where}.metrics[{name!r}].kind is " \
                   f"{stat['kind']!r}, want one of {STAT_KINDS}"
    return None


def check_meta_block(imc):
    """Well-formedness of imc.meta plus the digest-exclusion proofs."""
    meta = imc.get("meta")
    if not isinstance(meta, list):
        return "imc.meta missing (not a list)", []
    labels = []
    for i, chunk in enumerate(meta):
        where = f"imc.meta[{i}]"
        if not isinstance(chunk, dict):
            return f"{where} is not an object", labels
        label = chunk.get("label")
        if not isinstance(label, str) or not label:
            return f"{where}.label missing", labels
        labels.append(label)
        # Meta is outside every byte-identity contract: a digest (or the
        # digest-adjacent dropped_events accounting) on a meta chunk means
        # wall-clock data grew a fingerprint — exactly what must not happen.
        for banned in ("digest", "dropped_events"):
            if banned in chunk:
                return f"{where} ({label!r}) carries a {banned!r} field; " \
                       "meta chunks must stay digest-free", labels
        error = check_metrics_map(chunk.get("metrics"), where)
        if error:
            return error, labels
        if label == "prof":
            error = check_prof_chunk(chunk, where)
            if error:
                return error, labels
    return None, labels


def check_prof_chunk(chunk, where):
    """The prof block's shape: every metric is lane-qualified."""
    metrics = chunk["metrics"]
    if not metrics:
        return f"{where}: prof chunk has no metrics"
    for name in metrics:
        if "/" not in name:
            return f"{where}.metrics[{name!r}]: prof metrics must be " \
                   "lane-qualified (\"<lane>/<stat>\")"
    return None


def check_digest_chain(imc):
    """Recomputes the chain digest from the runs' digests alone.

    A match proves the exported chain is a pure function of the
    digest-bearing runs — no meta record (prof, sweep-pool occupancy)
    leaks into it.
    """
    chain = fnv1a(SCHEMA)
    for run in imc["runs"]:
        chain = fnv1a(run["digest"], chain)
    expected = format(chain, "016x")
    if imc["digest"] != expected:
        return f"imc.digest {imc['digest']} does not recompute from the " \
               f"runs' digests (want {expected}); a meta record leaked " \
               "into the chain, or the runs were tampered with"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON written via IMC_TRACE")
    parser.add_argument("--require", action="append", default=[],
                        metavar="CAT",
                        help="fail unless a span with this category exists")
    parser.add_argument("--require-meta", action="append", default=[],
                        metavar="LABEL",
                        help="fail unless a meta chunk with this label "
                             "exists (e.g. prof)")
    parser.add_argument("--print-digest", action="store_true",
                        help="print the chain digest to stdout")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {args.trace}: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail("no traceEvents array")
    error, spans, categories = check_events(events)
    if error:
        return fail(error)
    if spans == 0:
        return fail("no complete spans (ph=X) in the trace")

    imc = trace.get("imc")
    if not isinstance(imc, dict):
        return fail("no imc summary block")
    error = check_imc_block(imc)
    if error:
        return fail(error)
    error, meta_labels = check_meta_block(imc)
    if error:
        return fail(error)
    error = check_digest_chain(imc)
    if error:
        return fail(error)

    # The event list is capped (IMC_TRACE_EVENTS); the per-run metrics maps
    # are not. A category counts as present if either mentions it.
    for run in imc["runs"]:
        for name in run["metrics"]:
            categories.add(name.split(".", 1)[0])
    missing = sorted(set(args.require) - categories)
    if missing:
        return fail(f"required span categories absent: {missing} "
                    f"(present: {sorted(categories)})")
    missing_meta = sorted(set(args.require_meta) - set(meta_labels))
    if missing_meta:
        return fail(f"required meta chunks absent: {missing_meta} "
                    f"(present: {sorted(meta_labels)})")

    if args.print_digest:
        print(imc["digest"])
    else:
        print(f"ok: {spans} spans, {len(imc['runs'])} runs, "
              f"{len(meta_labels)} meta chunk(s), "
              f"categories {sorted(c for c in categories if c)}, "
              f"digest {imc['digest']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
