#!/usr/bin/env python3
"""Validator for imc::trace Chrome/Perfetto exports.

Checks that a trace written via IMC_TRACE=<path> is well-formed: valid
JSON, every traceEvent one of the phases the exporter emits (M metadata /
X complete span / C counter) with integer non-negative ts/dur and pid/tid
present, and an "imc" summary block carrying the schema tag, per-run
digests, and the chain digest.

Usage:
  scripts/check_trace.py TRACE.json [--require CAT ...] [--print-digest]

--require CAT fails unless at least one span carries that category (the
span-name prefix before the first dot: fabric, ds, workflow, ...) or a
counter does (mem gauges export as ph=C counters, not spans).
--print-digest writes the chain digest to stdout for cheap shell diffs.
"""

import argparse
import json
import sys

SCHEMA = "imc-trace-v1"
DIGEST_HEX_LEN = 16


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_events(events):
    """Returns (error, span_count, categories_seen)."""
    categories = set()
    spans = 0
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = event.get("ph")
        if ph not in ("M", "X", "C"):
            return f"{where}: unexpected ph {ph!r}", spans, categories
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                return f"{where}: missing integer {key}", spans, categories
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            return f"{where}: ts must be a non-negative integer", \
                spans, categories
        if "name" not in event:
            return f"{where}: missing name", spans, categories
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                return f"{where}: dur must be a non-negative integer", \
                    spans, categories
            spans += 1
            categories.add(event.get("cat", ""))
        else:  # C
            args = event.get("args", {})
            if "value" not in args:
                return f"{where}: counter without args.value", \
                    spans, categories
            categories.add(event["name"].split(".", 1)[0])
    return None, spans, categories


def check_imc_block(imc):
    if imc.get("schema") != SCHEMA:
        return f"imc.schema is {imc.get('schema')!r}, want {SCHEMA!r}"
    digest = imc.get("digest")
    if not isinstance(digest, str) or len(digest) != DIGEST_HEX_LEN:
        return "imc.digest missing or not a 16-hex-char string"
    runs = imc.get("runs")
    if not isinstance(runs, list):
        return "imc.runs missing"
    for i, run in enumerate(runs):
        run_digest = run.get("digest")
        if not isinstance(run_digest, str) or \
                len(run_digest) != DIGEST_HEX_LEN:
            return f"imc.runs[{i}].digest missing or malformed"
        if "label" not in run or "metrics" not in run:
            return f"imc.runs[{i}] missing label/metrics"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON written via IMC_TRACE")
    parser.add_argument("--require", action="append", default=[],
                        metavar="CAT",
                        help="fail unless a span with this category exists")
    parser.add_argument("--print-digest", action="store_true",
                        help="print the chain digest to stdout")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {args.trace}: {e}")

    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail("no traceEvents array")
    error, spans, categories = check_events(events)
    if error:
        return fail(error)
    if spans == 0:
        return fail("no complete spans (ph=X) in the trace")

    imc = trace.get("imc")
    if not isinstance(imc, dict):
        return fail("no imc summary block")
    error = check_imc_block(imc)
    if error:
        return fail(error)

    missing = sorted(set(args.require) - categories)
    if missing:
        return fail(f"required span categories absent: {missing} "
                    f"(present: {sorted(categories)})")

    if args.print_digest:
        print(imc["digest"])
    else:
        print(f"ok: {spans} spans, {len(imc['runs'])} runs, "
              f"categories {sorted(c for c in categories if c)}, "
              f"digest {imc['digest']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
