#!/usr/bin/env python3
"""Merge perf baselines, prof reports, and sweep-scaling tables into a
markdown dashboard with per-host history and regression detection.

Three inputs, all optional but at least one required for `report`:
  - BENCH_perf.json        (scripts/bench.py full mode: micro + scenarios +
                            derived.sweep_scaling)
  - imc::prof JSON reports (IMC_PROF=<path> runs: per-lane wall-clock
                            timings + resource counters + host + rusage)
  - BENCH_history.json     (per-host history this tool maintains)

Subcommands:

  report   write the markdown dashboard
      --perf FILE          bench.py full-mode report
      --prof LABEL=FILE    prof report (repeatable; LABEL names the run,
                           e.g. w2 for an IMC_THREADS=2 sweep)
      --history FILE       per-host history for the trend/regression block
      --out FILE           markdown output (default: stdout)

  update-history   fold a BENCH_perf.json into the history file
      --perf FILE --history FILE  [--max-per-host N]

  gate     history-aware sweep-speedup gate for CI
      --speedup X          the measured speedup to judge
      --threads N          sweep width the measurement used
      --history FILE       committed per-host history
      --floor X            required speedup (default 1.3)
      Hard-fails (exit 1) only when a same-host/same-core-count history
      entry proves the floor is reachable on this hardware; everything
      else — unknown host, single core, host that has never met the
      floor, IMC_PERF_GATE_SOFT=1 — degrades to a warning (exit 0).

The history file keys entries by (cpu_model, cores): committed numbers are
only comparable within a host class, which is exactly why the committed
0.58x sweep_speedup (1-core container) must not hard-gate a 16-core box
and vice versa.
"""

import argparse
import json
import os
import sys
import time

HISTORY_SCHEMA = "imc-bench-history-v1"
PROF_SCHEMA = "imc-prof-v1"
DEFAULT_FLOOR = 1.3
# Regression thresholds for the report's detection block.
SPEEDUP_DROP = 0.9      # sweep_speedup below 90% of the host's best
RATIO_RISE = 1.2        # derived speedups below 1/1.2 of the host's best


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"imc-report: cannot load {what} {path}: {e}")


def host_info():
    """Current host descriptor; mirrors bench.py and prof::host()."""
    cpu_model = "unknown"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.startswith("model name"):
                    cpu_model = line.partition(":")[2].strip()
                    break
    except OSError:
        pass
    return {"cores": os.cpu_count() or 0, "cpu_model": cpu_model}


def host_key(host):
    return (host.get("cpu_model", "unknown"), host.get("cores", 0))


def load_history(path):
    if not path or not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "entries": []}
    data = load_json(path, "history")
    if data.get("schema") != HISTORY_SCHEMA or \
            not isinstance(data.get("entries"), list):
        sys.exit(f"imc-report: {path} is not a {HISTORY_SCHEMA} file")
    return data


def same_host_entries(history, host):
    key = host_key(host)
    return [e for e in history["entries"]
            if host_key(e.get("host", {})) == key]


# ---------------------------------------------------------------------------
# Markdown helpers
# ---------------------------------------------------------------------------

def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    out += ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join(out)


def fmt_seconds(s):
    if s >= 1.0:
        return f"{s:.2f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} µs"


def fmt_bytes(b):
    for unit, div in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if b >= div:
            return f"{b / div:.1f} {unit}"
    return f"{b:.0f} B"


def stat_sum(lane, name):
    stat = lane.get(name)
    return stat["sum"] if stat else 0.0


def stat_max(lane, name):
    stat = lane.get(name)
    return stat["max"] if stat else 0.0


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def render_host(host):
    return table(
        ["cores", "cpu model", "page size", "platform/build"],
        [[host.get("cores", "?"), host.get("cpu_model", "?"),
          host.get("page_size", "?"),
          host.get("platform", host.get("build_type", "?"))]])


def render_scaling(derived):
    scaling = derived.get("sweep_scaling", {})
    if not scaling:
        return None
    rows = [[f"x{width}", f"{speedup:.2f}x"]
            for width, speedup in sorted(scaling.items(),
                                         key=lambda kv: int(kv[0]))]
    lines = ["## Sweep scaling (wall-clock speedup vs IMC_THREADS=1)", "",
             table(["width", "speedup"], rows)]
    if "sweep_speedup" in derived:
        lines.append("")
        lines.append(f"Headline `sweep_speedup` (width "
                     f"{derived.get('sweep_threads', '?')}): "
                     f"**{derived['sweep_speedup']:.2f}x**")
    return "\n".join(lines)


def render_derived(derived):
    keys = [k for k in sorted(derived)
            if k not in ("sweep_scaling", "sweep_speedup", "sweep_threads")]
    if not keys:
        return None
    rows = [[k, derived[k]] for k in keys]
    return "\n".join(["## Derived metrics (speedups & disabled-hook "
                      "overheads)", "", table(["metric", "value"], rows)])


def render_prof(label, report):
    """Per-worker occupancy, flush-cost breakdown, resource accounting."""
    lanes = report.get("lanes", {})
    lines = [f"### Prof run `{label}`", ""]

    # Worker occupancy: busy = job.run, idle = recorded idle gaps, span =
    # the lane's whole wall-clock window.
    occ_rows = []
    for name in sorted(lanes):
        lane = lanes[name]
        span = stat_sum(lane, "worker.span")
        if span <= 0.0:
            continue
        busy = stat_sum(lane, "job.run")
        idle = stat_sum(lane, "idle")
        flush = stat_sum(lane, "job.flush")
        jobs = int(stat_sum(lane, "jobs"))
        occ_rows.append([
            name, jobs, fmt_seconds(span), fmt_seconds(busy),
            fmt_seconds(idle), fmt_seconds(flush),
            f"{100.0 * busy / span:.0f}%", f"{100.0 * idle / span:.0f}%"])
    if occ_rows:
        lines += ["Per-worker occupancy:", "",
                  table(["lane", "jobs", "span", "busy (job.run)", "idle",
                         "flush", "occupancy %", "idle %"], occ_rows), ""]

    caller = lanes.get("caller")
    if caller:
        join = stat_sum(caller, "pool.join")
        flush = stat_sum(caller, "pool.flush")
        dispatch = stat_sum(caller, "pool.dispatch")
        rows = [["pool.dispatch (thread spawn)", fmt_seconds(dispatch)],
                ["pool.join (whole sweep from the caller)",
                 fmt_seconds(join)],
                ["pool.flush (ordered result flush)", fmt_seconds(flush)]]
        job_flush = stat_sum(caller, "job.flush")
        if job_flush:
            rows.append(["  of which per-job flush", fmt_seconds(job_flush)])
        if join > 0:
            rows.append(["flush / join ratio", f"{flush / join:.1%}"])
        lines += ["Caller-side cost breakdown:", "",
                  table(["phase", "wall time"], rows), ""]

    # Resource accounting across all lanes.
    arena_hwm = max((stat_max(lane, "arena.reserved_bytes")
                     for lane in lanes.values()), default=0.0)
    res_rows = []
    if arena_hwm:
        res_rows.append(["arena high-water mark (largest lane)",
                         fmt_bytes(arena_hwm)])
    for key, title, render in (
            ("arena.allocations", "arena allocations", "{:.0f}".format),
            ("arena.heap_fallbacks", "arena heap fallbacks",
             "{:.0f}".format),
            ("log.captured_bytes", "log bytes captured", fmt_bytes),
            ("trace.events_recorded", "trace events recorded",
             "{:.0f}".format),
            ("trace.events_dropped", "trace events dropped",
             "{:.0f}".format),
            ("fault.retries", "fault retries", "{:.0f}".format)):
        total = sum(stat_sum(lane, key) for lane in lanes.values())
        if total or key in ("trace.events_dropped",):
            res_rows.append([title, render(total)])
    if res_rows:
        lines += ["Resource accounting (all lanes):", "",
                  table(["resource", "total"], res_rows), ""]

    rusage = report.get("rusage", {})
    process = report.get("process", {})
    if rusage.get("ok"):
        lines += [f"Process: max RSS {rusage['max_rss_kb']} KiB, "
                  f"{rusage['minor_faults']} minor faults, "
                  f"{rusage['voluntary_ctx_switches']} voluntary / "
                  f"{rusage['involuntary_ctx_switches']} involuntary "
                  f"context switches, wall "
                  f"{fmt_seconds(process.get('wall_seconds', 0.0))}.", ""]
    return "\n".join(lines).rstrip()


def detect_regressions(derived, history, host):
    """Compare this run against the same host class's history."""
    entries = same_host_entries(history, host)
    if not entries:
        return ["no history for this host class — nothing to compare "
                "against (first run here records the baseline)"], []
    notes, regressions = [], []
    speedup = derived.get("sweep_speedup")
    best = max((e.get("sweep_speedup", 0.0) for e in entries), default=0.0)
    if speedup is not None and best > 0:
        notes.append(f"sweep_speedup {speedup:.2f}x vs host best "
                     f"{best:.2f}x over {len(entries)} run(s)")
        if speedup < best * SPEEDUP_DROP:
            regressions.append(
                f"sweep_speedup {speedup:.2f}x fell below "
                f"{SPEEDUP_DROP:.0%} of this host's best {best:.2f}x")
    for key in ("box_query_speedup", "slab_copy_speedup"):
        current = derived.get(key)
        hist_best = max((e.get("derived", {}).get(key, 0.0)
                         for e in entries), default=0.0)
        if current and hist_best and current * RATIO_RISE < hist_best:
            regressions.append(
                f"{key} {current:.2f}x is more than "
                f"{RATIO_RISE:.1f}x below this host's best "
                f"{hist_best:.2f}x")
    return notes, regressions


def cmd_report(args):
    sections = ["# imc-report — harness performance dashboard", ""]
    perf = load_json(args.perf, "perf report") if args.perf else None
    history = load_history(args.history)

    host = (perf or {}).get("host") or host_info()
    sections += ["## Host", "", render_host(host), ""]

    if perf:
        derived = perf.get("derived", {})
        scaling = render_scaling(derived)
        if scaling:
            sections += [scaling, ""]
        derived_md = render_derived(derived)
        if derived_md:
            sections += [derived_md, ""]
        notes, regressions = detect_regressions(derived, history, host)
        sections += ["## Regression check", ""]
        for note in notes:
            sections.append(f"- {note}")
        if regressions:
            sections += [""] + [f"- **REGRESSION**: {r}"
                                for r in regressions]
        else:
            sections.append("- no regressions against this host's history")
        sections.append("")

    if args.prof:
        sections += ["## Wall-clock profile (imc::prof)", ""]
        for spec in args.prof:
            label, _, path = spec.partition("=")
            if not path:
                label, path = os.path.basename(spec), spec
            report = load_json(path, "prof report")
            if report.get("schema") != PROF_SCHEMA:
                sys.exit(f"imc-report: {path} is not a {PROF_SCHEMA} "
                         "report")
            sections += [render_prof(label, report), ""]

    text = "\n".join(sections).rstrip() + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"imc-report: wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


# ---------------------------------------------------------------------------
# update-history
# ---------------------------------------------------------------------------

def cmd_update_history(args):
    perf = load_json(args.perf, "perf report")
    history = load_history(args.history)
    host = perf.get("host") or host_info()
    derived = perf.get("derived", {})
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {"cpu_model": host.get("cpu_model", "unknown"),
                 "cores": host.get("cores", 0)},
        "mode": perf.get("mode", "full"),
        "sweep_threads": derived.get("sweep_threads"),
        "sweep_speedup": derived.get("sweep_speedup"),
        "sweep_scaling": derived.get("sweep_scaling", {}),
        "derived": {k: v for k, v in derived.items()
                    if isinstance(v, (int, float))},
    }
    history["entries"].append(entry)
    # Bound per-host growth, keeping the newest entries.
    key = host_key(entry["host"])
    same = [e for e in history["entries"]
            if host_key(e.get("host", {})) == key]
    if len(same) > args.max_per_host:
        drop = set(id(e) for e in same[:len(same) - args.max_per_host])
        history["entries"] = [e for e in history["entries"]
                              if id(e) not in drop]
    with open(args.history, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"imc-report: recorded {entry['host']['cores']}-core entry "
          f"(sweep_speedup {entry['sweep_speedup']}) into {args.history}")
    return 0


# ---------------------------------------------------------------------------
# gate
# ---------------------------------------------------------------------------

def cmd_gate(args):
    history = load_history(args.history)
    host = host_info()
    speedup = args.speedup
    floor = args.floor

    def soften(reason):
        print(f"WARN: sweep_speedup {speedup:.2f}x below {floor}x — "
              f"soft gate ({reason})")
        return 0

    if speedup >= floor:
        print(f"sweep_speedup {speedup:.2f}x meets the {floor}x floor")
        return 0
    if os.environ.get("IMC_PERF_GATE_SOFT", "0") == "1":
        return soften("IMC_PERF_GATE_SOFT=1")
    if host["cores"] < 2:
        return soften(f"{host['cores']} core(s): no parallel speedup is "
                      "physically possible")
    entries = same_host_entries(history, host)
    if not entries:
        return soften(f"no history for this host class "
                      f"({host['cpu_model']!r}, {host['cores']} cores)")
    proven = [e for e in entries
              if (e.get("sweep_speedup") or 0.0) >= floor
              and e.get("sweep_threads") == args.threads]
    if not proven:
        return soften("this host class has never met the floor at width "
                      f"{args.threads}; recording runs via update-history "
                      "arms the hard gate")
    best = max(e["sweep_speedup"] for e in proven)
    print(f"FAIL: sweep_speedup {speedup:.2f}x below the {floor}x floor, "
          f"but this host class reached {best:.2f}x at width "
          f"{args.threads} before — hard regression", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(prog="imc-report",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="write the markdown dashboard")
    p_report.add_argument("--perf")
    p_report.add_argument("--prof", action="append", default=[],
                          metavar="LABEL=FILE")
    p_report.add_argument("--history")
    p_report.add_argument("--out")
    p_report.set_defaults(fn=cmd_report)

    p_hist = sub.add_parser("update-history",
                            help="fold a perf report into the history")
    p_hist.add_argument("--perf", required=True)
    p_hist.add_argument("--history", required=True)
    p_hist.add_argument("--max-per-host", type=int, default=50)
    p_hist.set_defaults(fn=cmd_update_history)

    p_gate = sub.add_parser("gate", help="history-aware speedup gate")
    p_gate.add_argument("--speedup", type=float, required=True)
    p_gate.add_argument("--threads", type=int, default=2)
    p_gate.add_argument("--history")
    p_gate.add_argument("--floor", type=float, default=DEFAULT_FLOOR)
    p_gate.set_defaults(fn=cmd_gate)

    args = parser.parse_args()
    if args.command == "report" and not (args.perf or args.prof):
        parser.error("report needs --perf and/or --prof")
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
