"""SARIF 2.1.0 export so CI can annotate findings on the diff."""

import json
import os

from analyze import __version__
from analyze.rules import RULES


def write(path, findings, repo_root):
    rules_meta = [
        {
            "id": rule_id,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, (_, _, desc) in sorted(RULES.items())
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f"{f.message} — {f.hint}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": os.path.relpath(os.path.abspath(f.path),
                                               repo_root).replace(os.sep,
                                                                  "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
        }
        for f in findings
    ]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "imc-analyze",
                    "version": __version__,
                    "rules": rules_meta,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
