"""Baseline file support for imc-analyze.

A baseline records known findings so a newly strengthened rule can land
without blocking CI while the tree is cleaned up. Entries are fingerprints
of (rule, repo-relative path, normalized source line text) — deliberately
line-number free, so edits elsewhere in a file never stale the baseline,
and deliberately text-anchored, so fixing the offending line retires the
entry (a stale baseline shrinks; it can never hide a new violation
elsewhere).
"""

import hashlib
import json
import os


def fingerprint(finding, repo_root, raw_line):
    rel = os.path.relpath(os.path.abspath(finding.path), repo_root)
    normalized = " ".join(raw_line.split())
    payload = f"{finding.rule}\x1f{rel}\x1f{normalized}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def load(path):
    """Returns {fingerprint: entry-dict}. A missing file is an empty
    baseline; malformed JSON is a hard error (a truncated baseline must not
    silently un-suppress the world)."""
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not an imc-analyze baseline "
                         "(expected an object with a 'findings' list)")
    return {entry["fingerprint"]: entry for entry in data["findings"]}


def save(path, findings_with_prints):
    """Writes a baseline covering the given [(finding, fingerprint)]."""
    entries = [
        {
            "fingerprint": fp,
            "rule": f.rule,
            "path": f.path,
            "line": f.line,  # informational; not part of the fingerprint
            "message": f.message,
        }
        for f, fp in sorted(findings_with_prints,
                            key=lambda p: (p[0].path, p[0].line, p[0].rule))
    ]
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"version": 1, "tool": "imc-analyze",
                   "findings": entries}, f, indent=2)
        f.write("\n")
