"""`python3 -m analyze` entry point (run from scripts/, or with scripts/
on PYTHONPATH). The `scripts/imc-analyze` launcher is the usual door."""

import sys

from analyze.cli import main

if __name__ == "__main__":
    sys.exit(main())
