"""Rule implementations for imc-analyze.

Every rule machine-checks one invariant the benchmark suite's contracts
(byte-identical stdout at any IMC_THREADS, schedule-invariant digests,
leak-free teardown) depend on. DESIGN.md §12 catalogues what each one
protects; tests/analyze/fixtures/ pins what each one flags and passes.

A rule is a function (ctx) -> [Finding]; the registry maps rule ids to
(function, hint, path predicate). Path predicates scope rules to where the
invariant actually holds — e.g. raw-exit-in-library only applies under
src/ (benches and examples are entry points and may die), and
discarded-result skips tests/ (tests exercise failure paths on purpose).
"""

import os
from dataclasses import dataclass

from analyze.tokens import ID, PUNCT


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    hint: str

    def location(self):
        return f"{self.path}:{self.line}"


class Context:
    """Per-file state shared by the rules."""

    def __init__(self, path, stream, raw_lines):
        self.path = path
        self.stream = stream
        self.raw_lines = raw_lines
        parts = os.path.normpath(path).split(os.sep)
        self.parts = parts
        # Top-level tree this file belongs to (src/bench/tests/examples).
        self.tree = next((p for p in parts
                          if p in ("src", "bench", "tests", "examples")),
                         "other")

    def in_dir(self, *names):
        return any(n in self.parts for n in names)

    def basename(self):
        return self.parts[-1]


# ---------------------------------------------------------------------------
# Shared token helpers
# ---------------------------------------------------------------------------

def _is_free_call(ts, i, allow_std=True):
    """True if the ID at i is called as a free function: `name(`, optionally
    `std::name(`, but not `obj.name(`, `obj->name(`, or `other::name(`."""
    toks = ts.tokens
    nx = ts.next_code(i)
    if nx is None or toks[nx].text != "(":
        return False
    pv = ts.prev_code(i)
    if pv is None:
        return True
    pt = toks[pv].text
    if pt in (".", "->"):
        return False
    if pt == "::":
        qual = ts.prev_code(pv)
        qual_name = toks[qual].text if qual is not None else ""
        return allow_std and qual_name in ("std", "")
    return True


def _qualifier(ts, i):
    """Name of the `ns` in `ns::tok` for the token at i, or ''. Walks one
    level only — enough to tell audit::global from trace::global."""
    pv = ts.prev_code(i)
    if pv is None or ts.tokens[pv].text != "::":
        return ""
    q = ts.prev_code(pv)
    return ts.tokens[q].text if q is not None and ts.tokens[q].kind == ID \
        else ""


def _match_angle(ts, i):
    """From a `<` at index i, return the index of the matching `>`.

    Good enough for type contexts: tracks <, > and >> nesting, bails at `;`
    or `{` (then it was a comparison, not template args)."""
    toks = ts.tokens
    depth = 0
    j = i
    while j < len(toks):
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j
        elif t in (";", "{"):
            return None
        j += 1
    return None


def _body_after(ts, close_paren):
    """Loop/if body following a `)` at close_paren: (start, end) token range.

    A braced body spans its braces; a single-statement body runs to the next
    `;`. Returns None if neither is found."""
    toks = ts.tokens
    j = ts.next_code(close_paren)
    if j is None:
        return None
    if toks[j].text == "{":
        close = ts.match_brace(j)
        return (j, close) if close is not None else None
    while j < len(toks) and toks[j].text != ";":
        j += 1
    return (ts.next_code(close_paren), j)


def _range_contains_id(ts, start, end, names):
    return any(t.kind == ID and t.text in names
               for t in ts.tokens[start:end + 1])


# ---------------------------------------------------------------------------
# wall-clock — real time must never reach simulated code
# ---------------------------------------------------------------------------

_WALL_CLOCK_IDS = frozenset({
    "system_clock", "steady_clock", "high_resolution_clock",
})
_WALL_CLOCK_CALLS = frozenset({
    "time", "clock", "clock_gettime", "gettimeofday", "timespec_get",
    "ftime", "localtime", "gmtime",
})


def rule_wall_clock(ctx):
    ts = ctx.stream
    findings = []
    for i, tok in enumerate(ts.tokens):
        if tok.kind != ID or tok.preproc:
            continue
        if tok.text in _WALL_CLOCK_IDS and _qualifier(ts, i) == "chrono":
            findings.append(Finding(
                "wall-clock", ctx.path, tok.line,
                f"std::chrono::{tok.text} reads real time inside simulated "
                "code; timestamps and durations must come from "
                "sim::Engine::now()",
                "take a sim::Engine& and use engine.now() / engine.sleep()"))
        elif tok.text in _WALL_CLOCK_CALLS and _is_free_call(ts, i):
            findings.append(Finding(
                "wall-clock", ctx.path, tok.line,
                f"{tok.text}() reads the wall clock; simulated code must "
                "derive all times from sim::Engine::now() or run digests "
                "diverge between hosts and runs",
                "use engine.now(); for trace timestamps use the bound "
                "trace::Recorder"))
    return findings


# ---------------------------------------------------------------------------
# global-rng — all randomness flows through the seeded common/rng.h
# ---------------------------------------------------------------------------

_RNG_TYPES = frozenset({
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "default_random_engine", "knuth_b",
})
_RNG_CALLS = frozenset({"rand", "srand", "random", "srandom", "drand48",
                        "lrand48", "arc4random"})


def rule_global_rng(ctx):
    ts = ctx.stream
    findings = []
    for i, tok in enumerate(ts.tokens):
        if tok.kind != ID or tok.preproc:
            continue
        if tok.text in _RNG_TYPES:
            findings.append(Finding(
                "global-rng", ctx.path, tok.line,
                f"std::{tok.text} is seeded from process state; every "
                "stochastic choice must come from an explicitly seeded "
                "imc::Rng so runs replay byte-for-byte",
                "construct imc::Rng(seed) and draw from it"))
        elif tok.text in _RNG_CALLS and _is_free_call(ts, i):
            findings.append(Finding(
                "global-rng", ctx.path, tok.line,
                f"{tok.text}() uses hidden global RNG state, which breaks "
                "run-to-run reproducibility",
                "construct imc::Rng(seed) and draw from it"))
    return findings


# ---------------------------------------------------------------------------
# discarded-result — `(void)` on awaited or returned Status hides failures
# ---------------------------------------------------------------------------

def rule_discarded_result(ctx):
    ts = ctx.stream
    toks = ts.tokens
    findings = []
    for i, tok in enumerate(toks):
        if tok.kind != PUNCT or tok.text != "(" or tok.preproc:
            continue
        # A cast position: `f(void)` (a declaration's parameter list) has an
        # identifier before the `(`; `(void)expr` does not.
        pv = ts.prev_code(i)
        if pv is not None and (toks[pv].kind == ID
                               or toks[pv].text in (")", "]")):
            continue
        nx = ts.next_code(i)
        if nx is None or toks[nx].text != "void":
            continue
        close = ts.next_code(nx)
        if close is None or toks[close].text != ")":
            continue
        expr = ts.next_code(close)
        if expr is None:
            continue
        if toks[expr].text == "co_await":
            findings.append(Finding(
                "discarded-result", ctx.path, tok.line,
                "(void)co_await discards the awaited Status/Result; an "
                "injected fault or exhausted resource fails silently and "
                "the run's tables report work that never happened",
                "bind the result (`Status st = co_await ...`) and check "
                "st.is_ok(), or propagate with co_return"))
            continue
        # (void)call(...): a call whose result is thrown away. A bare
        # (void)name; (unused-variable silencing) is fine.
        j = expr
        has_call = False
        while j < len(toks) and toks[j].text != ";":
            if toks[j].text == "(":
                has_call = True
                end = ts.match_paren(j)
                if end is None:
                    break
                j = end
            j += 1
        if has_call:
            findings.append(Finding(
                "discarded-result", ctx.path, tok.line,
                "(void) on a call discards its Status/Result; failures "
                "vanish instead of reaching failure summaries",
                "check the returned status, or suppress with a comment "
                "explaining why the result is provably irrelevant"))
    return findings


# ---------------------------------------------------------------------------
# adhoc-retry — retrying outside fault::retry forks the backoff policy
# ---------------------------------------------------------------------------

_RETRY_MARKERS = ("attempt", "retry", "backoff")


def rule_adhoc_retry(ctx):
    ts = ctx.stream
    toks = ts.tokens
    findings = []
    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text not in ("for", "while") or tok.preproc:
            continue
        op = ts.next_code(i)
        if op is None or toks[op].text != "(":
            continue
        cp = ts.match_paren(op)
        if cp is None:
            continue
        header_has_marker = any(
            t.kind == ID and any(m in t.text.lower() for m in _RETRY_MARKERS)
            for t in toks[op:cp])
        if not header_has_marker:
            continue
        body = _body_after(ts, cp)
        if body is None:
            continue
        sleeps = any(t.kind == ID and t.text == "sleep"
                     and toks[min(k + 1, len(toks) - 1)].text == "("
                     for k, t in enumerate(toks[body[0]:body[1]],
                                           start=body[0]))
        if sleeps:
            findings.append(Finding(
                "adhoc-retry", ctx.path, tok.line,
                "hand-rolled retry loop (attempt counter + sleep) forks the "
                "backoff/jitter policy; attempts, timeouts and dropped ops "
                "must land in fault's accounting",
                "use fault::retry(engine, policy, op) or fault::ride_out"))
    return findings


# ---------------------------------------------------------------------------
# env-without-or-die — getenv bypasses validated, fail-fast env parsing
# ---------------------------------------------------------------------------

def rule_env_parse(ctx):
    ts = ctx.stream
    findings = []
    for i, tok in enumerate(ts.tokens):
        if tok.kind != ID or tok.preproc:
            continue
        if tok.text in ("getenv", "secure_getenv") and _is_free_call(ts, i):
            findings.append(Finding(
                "env-without-or-die", ctx.path, tok.line,
                f"raw {tok.text}() skips validation; a garbage knob value "
                "must terminate with a clear message, not be half-parsed "
                "into a silently different scenario",
                "use env::flag_or_die / int_or_die / double_or_die / "
                "str_or_die from common/env.h"))
    return findings


# ---------------------------------------------------------------------------
# raw-exit-in-library — library code reports Status; it never kills the host
# ---------------------------------------------------------------------------

_EXIT_CALLS = frozenset({"exit", "_exit", "_Exit", "quick_exit", "abort"})


def rule_raw_exit(ctx):
    ts = ctx.stream
    findings = []
    for i, tok in enumerate(ts.tokens):
        if tok.kind != ID or tok.preproc:
            continue
        flagged = (tok.text in _EXIT_CALLS and _is_free_call(ts, i)) or \
            (tok.text == "terminate" and _qualifier(ts, i) == "std"
             and _is_free_call(ts, i))
        if flagged:
            findings.append(Finding(
                "raw-exit-in-library", ctx.path, tok.line,
                f"{tok.text}() in library code kills the whole process — "
                "including the sweep pool's other worlds and any pending "
                "auditors/trace flushes",
                "return a Status (make_error) or record_failure on the "
                "engine; dying is reserved for entry points"))
    return findings


# ---------------------------------------------------------------------------
# unordered-iteration — hash-order loops must not feed observable output
# ---------------------------------------------------------------------------

_UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
})

# Calls/objects through which a loop body becomes observable: output,
# logging, tracing, digests, or the event engine. Iterating an unordered
# container into any of these bakes allocator/hash history into results —
# the PR 4 reap_processes bug class.
_OBSERVABLE_SINKS = frozenset({
    # stdio / streams
    "printf", "fprintf", "puts", "fputs", "cout", "cerr", "clog",
    # logging
    "log_message", "write_log_output", "LogLine", "warn", "info", "error",
    "debug",
    # tracing / metrics
    "span", "counter", "gauge", "instant", "emit",
    # digests and hashes that end up in run fingerprints
    "digest", "note_event", "hash_combine", "splitmix64", "fingerprint",
    # the event engine: resume order becomes schedule order
    "schedule_at", "schedule_now", "spawn", "sleep", "record_failure",
})


def _collect_unordered_names(ts):
    """Identifiers declared (or assigned from) an unordered container."""
    toks = ts.tokens
    names = set()
    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text not in _UNORDERED_TYPES or tok.preproc:
            continue
        nx = ts.next_code(i)
        if nx is None or toks[nx].text != "<":
            continue
        close = _match_angle(ts, nx)
        if close is None:
            continue
        j = ts.next_code(close)
        # Skip refs/pointers/cv in the declarator.
        while j is not None and toks[j].text in ("&", "*", "const"):
            j = ts.next_code(j)
        if j is not None and toks[j].kind == ID:
            after = ts.next_code(j)
            # `name(` is a function declaration returning the container;
            # anything else (`;`, `=`, `{`, `,`) declares a variable.
            if after is not None and toks[after].text != "(":
                names.add(toks[j].text)
    # Propagate through `auto x = std::move(y);` / `auto x = y;`.
    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text != "auto" or tok.preproc:
            continue
        name_i = ts.next_code(i)
        if name_i is None or toks[name_i].kind != ID:
            continue
        eq = ts.next_code(name_i)
        if eq is None or toks[eq].text != "=":
            continue
        j = eq
        for _ in range(6):  # look a few tokens ahead: move ( y ) ;
            j = ts.next_code(j)
            if j is None or toks[j].text == ";":
                break
            if toks[j].kind == ID and toks[j].text in names:
                names.add(toks[name_i].text)
                break
    return names


def rule_unordered_iteration(ctx):
    ts = ctx.stream
    toks = ts.tokens
    names = _collect_unordered_names(ts)
    findings = []

    def check_body(body, line, what):
        lo, hi = body
        for k in range(lo, hi + 1):
            t = toks[k]
            if t.kind == ID and t.text in _OBSERVABLE_SINKS:
                findings.append(Finding(
                    "unordered-iteration", ctx.path, line,
                    f"loop over {what} iterates in hash/allocator order and "
                    f"its body reaches an observable sink ({t.text}); the "
                    "order leaks into output/digests and varies between "
                    "runs and hosts",
                    "snapshot the keys and sort them (the reap_processes "
                    "fix pattern), or use std::map"))
                return

    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text != "for" or tok.preproc:
            continue
        op = ts.next_code(i)
        if op is None or toks[op].text != "(":
            continue
        cp = ts.match_paren(op)
        if cp is None:
            continue
        header = toks[op + 1:cp]
        # Range-for: `for (decl : expr)` — find the top-level `:`.
        colon = next((k for k in range(op + 1, cp)
                      if toks[k].text == ":" and toks[k].kind == PUNCT), None)
        if colon is not None:
            if _range_contains_id(ts, colon, cp, names):
                body = _body_after(ts, cp)
                if body:
                    check_body(body, tok.line, "an unordered container")
            continue
        # Iterator loop: `X.begin()` / `X.cbegin()` over a known name.
        for k in range(op + 1, cp):
            if toks[k].kind == ID and toks[k].text in ("begin", "cbegin"):
                holder = ts.prev_code(k)
                if holder is not None and toks[holder].text in (".", "->"):
                    obj = ts.prev_code(holder)
                    if obj is not None and toks[obj].text in names:
                        body = _body_after(ts, cp)
                        if body:
                            check_body(body, tok.line,
                                       "an unordered container (iterator)")
                        break
        del header
    return findings


# ---------------------------------------------------------------------------
# scoped-binding — thread-local bindings must be named stack guards
# ---------------------------------------------------------------------------

# Scoped type -> accessor functions (with the qualifier that identifies
# them) whose result the guard feeds. An accessor call *before* the guard
# exists in the same scope reads the previous world's binding.
_SCOPED_FAMILIES = {
    # `global` alone is ambiguous between audit:: and trace::, so the
    # unqualified form is only matched for accessors with unique names.
    "ScopedAuditor": (("audit", "global"),),
    "ScopedRecorder": (("trace", "global"), ("", "bound_recorder"),
                       ("internal", "bound_recorder")),
    "ScopedFaultPlan": (("fault", "active"), ("", "active")),
    # `active` alone already belongs to ScopedFaultPlan, so the replication
    # coordinator accessor is matched qualified-only.
    "ScopedReplPolicy": (("repl", "active"),),
    "ScopedArena": (("arena", "current"),),
    "ScopedProf": (("prof", "meter"), ("", "bound_meter"),
                   ("internal", "bound_meter")),
    "ScopedLogBuffer": (),
    "ScopedTraceBuffer": (),
}


def _inside_own_class(ts, i, name):
    """True if token i sits inside `class <name> { ... }` (its definition)."""
    open_i, _ = ts.enclosing_scope(i)
    while open_i is not None:
        j = ts.prev_code(open_i)
        # Walk back over a base-clause / class head to the class keyword.
        steps = 0
        while j is not None and steps < 8:
            if ts.tokens[j].text in ("class", "struct"):
                k = ts.next_code(j)
                if k is not None and ts.tokens[k].text == name:
                    return True
                break
            if ts.tokens[j].text in (";", "}", "{"):
                break
            j = ts.prev_code(j)
            steps += 1
        open_i, _ = ts.enclosing_scope(open_i)
    return False


def _is_accessor_call(ts, i, qual):
    """True if ID at i is called as `qual::name(` (or bare `name(` when no
    qualifier is expected). Member calls never match."""
    toks = ts.tokens
    nx = ts.next_code(i)
    if nx is None or toks[nx].text != "(":
        return False
    pv = ts.prev_code(i)
    pt = toks[pv].text if pv is not None else ""
    if qual:
        return _qualifier(ts, i) == qual
    return pt not in (".", "->", "::")


def rule_scoped_binding(ctx):
    ts = ctx.stream
    toks = ts.tokens
    findings = []
    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text not in _SCOPED_FAMILIES or tok.preproc:
            continue
        pv = ts.prev_code(i)
        pt = toks[pv].text if pv is not None else ""
        nx = ts.next_code(i)
        nt = toks[nx].text if nx is not None else ""
        # Skip declarations/definitions of the guards themselves.
        if pt in ("explicit", "~", "class", "struct", "friend") or \
                nt in ("::", "&", "*") or \
                _inside_own_class(ts, i, tok.text):
            continue
        # Heap allocation: `new [ns::]ScopedX...`.
        j = pv
        while j is not None and toks[j].text == "::":
            j = ts.prev_code(j)          # qualifier name
            j = ts.prev_code(j) if j is not None else None
        if j is not None and toks[j].text == "new":
            findings.append(Finding(
                "scoped-binding", ctx.path, tok.line,
                f"heap-allocated {tok.text} decouples the binding from the "
                "scope it is supposed to cover; a missed delete leaves the "
                "world bound forever",
                f"declare a named stack guard: `{tok.text} bind(...);`"))
            continue
        if nx is None:
            continue
        if toks[nx].kind == ID:
            # Named declaration — the good form. Check ordering: no
            # accessor of this family may run earlier in this scope.
            open_i, _ = ts.enclosing_scope(i)
            lo = open_i if open_i is not None else 0
            for k in range(lo, i):
                t = toks[k]
                if t.kind != ID or t.preproc:
                    continue
                for qual, fn in _SCOPED_FAMILIES[tok.text]:
                    if t.text == fn and _is_accessor_call(ts, k, qual):
                        findings.append(Finding(
                            "scoped-binding", ctx.path, tok.line,
                            f"{tok.text} is constructed after "
                            f"{t.text}() was already called in this scope "
                            f"(line {t.line}); the earlier call read the "
                            "previous world's binding",
                            "move the guard declaration above the first "
                            "use of its accessor in the scope"))
                        break
                else:
                    continue
                break
            continue
        if nt in ("(", "{"):
            close = ts.match_paren(nx) if nt == "(" else ts.match_brace(nx)
            if close is None:
                continue
            after = ts.next_code(close)
            at = toks[after].text if after is not None else ""
            # Statement context + `;` right after the close = a temporary
            # that binds and unbinds within one expression.
            stmt_prev = j if j is not None else pv
            sp = toks[stmt_prev].text if stmt_prev is not None else ";"
            if at == ";" and sp in (";", "{", "}", ")", ":"):
                # `public: ScopedX();` inside the class is handled above;
                # what is left is a real temporary statement.
                findings.append(Finding(
                    "scoped-binding", ctx.path, tok.line,
                    f"temporary {tok.text} binds and immediately unbinds "
                    "at the end of the full expression — the code that "
                    "follows runs against the previous binding",
                    f"name it: `{tok.text} bind(...);` so the guard lives "
                    "to the end of the scope"))
    return findings


# ---------------------------------------------------------------------------
# co-await-under-lock — suspending while holding a mutex stalls the pool
# ---------------------------------------------------------------------------

_LOCK_GUARDS = frozenset({
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
})


def rule_co_await_under_lock(ctx):
    ts = ctx.stream
    toks = ts.tokens
    findings = []
    for i, tok in enumerate(toks):
        if tok.kind != ID or tok.text not in _LOCK_GUARDS or tok.preproc:
            continue
        nx = ts.next_code(i)
        if nx is None:
            continue
        # Declaration: `lock_guard<...> name(...)` or CTAD `scoped_lock n(m)`.
        if toks[nx].text == "<":
            close = _match_angle(ts, nx)
            if close is None:
                continue
            name_i = ts.next_code(close)
        elif toks[nx].kind == ID:
            name_i = nx
        else:
            continue
        if name_i is None or toks[name_i].kind != ID:
            continue
        # End of the declaration statement.
        j = name_i
        while j < len(toks) and toks[j].text != ";":
            j += 1
        scope_end = ts.scope_end(i)
        for k in range(j, scope_end):
            t = toks[k]
            if t.kind == ID and t.text == "co_await" and not t.preproc:
                findings.append(Finding(
                    "co-await-under-lock", ctx.path, t.line,
                    f"co_await while holding a {tok.text} (declared line "
                    f"{tok.line}): the coroutine suspends with the mutex "
                    "held, blocking every sweep worker that touches it — "
                    "and resume may happen on a different thread, making "
                    "the unlock UB",
                    "copy what you need out of the locked region, release "
                    "the guard (scope it tightly), then await"))
                break
    return findings


# ---------------------------------------------------------------------------
# detached-coroutine-lifetime — frames must not outlive captured state
# ---------------------------------------------------------------------------

def _lambda_intro(ts, i):
    """If token i is a lambda-introducer `[`, return (capture_end_index,
    captures_tokens); else None."""
    toks = ts.tokens
    pv = ts.prev_code(i)
    if pv is not None and (toks[pv].kind == ID or toks[pv].text in (")", "]")):
        return None  # subscript, not a lambda introducer
    nx = ts.next_code(i)
    if nx is not None and toks[nx].text == "[":
        return None  # [[attribute]]
    depth = 0
    j = i
    while j < len(toks):
        if toks[j].text == "[":
            depth += 1
        elif toks[j].text == "]":
            depth -= 1
            if depth == 0:
                return j, toks[i + 1:j]
        j += 1
    return None


def _lambda_body(ts, capture_end):
    """Token range of the lambda body following its capture list."""
    toks = ts.tokens
    j = ts.next_code(capture_end)
    # Skip the parameter list if present.
    if j is not None and toks[j].text == "(":
        close = ts.match_paren(j)
        if close is None:
            return None
        j = ts.next_code(close)
    # Skip specifiers / trailing return type up to the body.
    hops = 0
    while j is not None and toks[j].text != "{" and hops < 24:
        if toks[j].text == ";":
            return None
        j = ts.next_code(j)
        hops += 1
    if j is None or toks[j].text != "{":
        return None
    close = ts.match_brace(j)
    return (j, close) if close is not None else None


def rule_detached_coroutine(ctx):
    ts = ctx.stream
    toks = ts.tokens
    findings = []
    for i, tok in enumerate(toks):
        if tok.kind != PUNCT or tok.text != "[" or tok.preproc:
            continue
        intro = _lambda_intro(ts, i)
        if intro is None:
            continue
        cap_end, captures = intro
        body = _lambda_body(ts, cap_end)
        if body is None:
            continue
        is_coroutine = any(t.kind == ID and
                           t.text in ("co_await", "co_return", "co_yield")
                           for t in toks[body[0]:body[1]])
        if not is_coroutine:
            continue
        has_ref_capture = any(t.text == "&" for t in captures)
        has_any_capture = len(captures) > 0
        if has_ref_capture:
            findings.append(Finding(
                "detached-coroutine-lifetime", ctx.path, tok.line,
                "coroutine lambda captures by reference; the frame "
                "suspends and outlives the enclosing scope, so the "
                "captured references dangle",
                "pass state as explicit coroutine parameters (copied into "
                "the frame) — `[](T& x) -> Task<> {...}(obj)` is the safe "
                "idiom; captures are not"))
            continue
        if has_any_capture:
            # Capturing lambda coroutine handed to spawn(): the lambda
            # object is a temporary, and coroutine rules do NOT copy the
            # closure into the frame — its captures dangle once spawn
            # returns.
            pv = ts.prev_code(i)
            k = pv
            hops = 0
            while k is not None and hops < 4:
                if toks[k].kind == ID and toks[k].text == "spawn":
                    findings.append(Finding(
                        "detached-coroutine-lifetime", ctx.path, tok.line,
                        "capturing lambda coroutine passed to spawn(): the "
                        "closure object is a temporary and the coroutine "
                        "frame references it after destruction (captures "
                        "are not copied into the frame)",
                        "use a capture-free lambda with explicit "
                        "parameters: engine.spawn([](T& x) -> Task<> "
                        "{...}(obj))"))
                    break
                k = ts.prev_code(k)
                hops += 1
    return findings


# ---------------------------------------------------------------------------
# Registry and path scoping
# ---------------------------------------------------------------------------

def _everywhere(ctx):
    return True


def _not_fault_layer(ctx):
    return not ctx.in_dir("fault")


def _not_prof_layer(ctx):
    # src/prof/ is the designated wall-clock exception: imc::prof measures
    # the harness itself (pool waits, flush costs) and is strictly
    # digest-excluded, so real-time reads there cannot reach any contract.
    # Everywhere else the rule stands.
    return not ctx.in_dir("prof")


def _not_env_impl(ctx):
    return ctx.basename() not in ("env.cpp", "env.h")


def _library_only(ctx):
    return ctx.tree == "src"


def _not_tests(ctx):
    return ctx.tree != "tests"


# rule id -> (function, applies predicate, short description)
RULES = {
    "unordered-iteration": (
        rule_unordered_iteration, _everywhere,
        "hash-order iteration feeding output/digests/scheduling"),
    "wall-clock": (
        rule_wall_clock, _not_prof_layer,
        "real-time clocks in simulated code (src/prof/ is exempt)"),
    "global-rng": (
        rule_global_rng, _everywhere,
        "unseeded/global randomness"),
    "scoped-binding": (
        rule_scoped_binding, _everywhere,
        "Scoped* guards must be named stack objects bound before use"),
    "adhoc-retry": (
        rule_adhoc_retry, _not_fault_layer,
        "hand-rolled retry loops outside fault::retry"),
    "env-without-or-die": (
        rule_env_parse, _not_env_impl,
        "raw getenv instead of env::*_or_die"),
    "raw-exit-in-library": (
        rule_raw_exit, _library_only,
        "exit/abort/terminate in library code"),
    "co-await-under-lock": (
        rule_co_await_under_lock, _everywhere,
        "suspension points while holding a mutex guard"),
    "detached-coroutine-lifetime": (
        rule_detached_coroutine, _everywhere,
        "coroutine frames outliving captured state"),
    "discarded-result": (
        rule_discarded_result, _not_tests,
        "(void)-discarded Status/Result"),
}
