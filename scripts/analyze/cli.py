"""Command-line driver for imc-analyze.

    imc-analyze [paths...]                 analyze (default: src bench tests
                                           examples, relative to the repo root)
      --rule RULE          run only RULE (repeatable)
      --disable RULE       skip RULE (repeatable)
      --baseline FILE      tolerate findings fingerprinted in FILE
      --write-baseline F   write the current findings to F and exit 0
      --sarif FILE         also write a SARIF 2.1.0 report
      --backend B          tokens (default) or libclang (cross-check, only
                           if python clang bindings are installed)
      --list-rules         print the rule table and exit

Exit status: 0 clean (or baselined-only), 1 non-baselined findings,
2 usage error.

Suppress a single finding with a comment on the offending line or the line
above, stating why:

    // justification here. imc-analyze: allow(rule-id)
"""

import argparse
import os
import re
import sys

from analyze import __version__, baseline as baseline_mod, clang_backend, \
    sarif as sarif_mod
from analyze.rules import RULES, Context
from analyze.tokens import tokenize

ALLOW = re.compile(r"imc-analyze:\s*allow\(([\w,\s-]+)\)")
SOURCE_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")
DEFAULT_TARGETS = ("src", "bench", "tests", "examples")
# The fixture corpus is deliberately-bad code; directory walks skip it (the
# fixture test driver passes those files explicitly, which bypasses this).
EXCLUDED_SUBTREES = (os.path.join("tests", "analyze"),)


def repo_root_for(path):
    """Nearest ancestor containing .git, else the path's directory."""
    p = os.path.abspath(path)
    if os.path.isfile(p):
        p = os.path.dirname(p)
    while True:
        if os.path.exists(os.path.join(p, ".git")):
            return p
        parent = os.path.dirname(p)
        if parent == p:
            return os.path.dirname(os.path.abspath(path)) or os.getcwd()
        p = parent


def discover(targets):
    files, missing = [], []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        if not os.path.isdir(target):
            missing.append(target)
            continue
        for root, dirs, names in os.walk(target):
            rel = os.path.normpath(root)
            if any(sub in rel for sub in EXCLUDED_SUBTREES):
                dirs[:] = []
                continue
            files.extend(os.path.join(root, n) for n in sorted(names)
                         if n.endswith(SOURCE_EXTS))
    return sorted(set(files)), missing


def allowed_rules(raw_lines, lineno):
    """Rule ids suppressed for 1-based lineno (same line or the line above)."""
    rules = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW.search(raw_lines[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def analyze_file(path, enabled):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except (OSError, UnicodeDecodeError) as e:
        print(f"imc-analyze: cannot read {path}: {e}", file=sys.stderr)
        return [], []
    raw_lines = text.split("\n")
    ctx = Context(path, tokenize(text), raw_lines)
    findings, suppressed = [], []
    for rule_id in enabled:
        fn, applies, _ = RULES[rule_id]
        if not applies(ctx):
            continue
        for finding in fn(ctx):
            if finding.rule in allowed_rules(raw_lines, finding.line):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, raw_lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="imc-analyze", add_help=True,
        description="determinism & coroutine-safety static analysis")
    parser.add_argument("paths", nargs="*")
    parser.add_argument("--rule", action="append", default=[])
    parser.add_argument("--disable", action="append", default=[])
    parser.add_argument("--baseline")
    parser.add_argument("--write-baseline")
    parser.add_argument("--sarif")
    parser.add_argument("--backend", choices=("tokens", "libclang"),
                        default="tokens")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--version", action="version",
                        version=f"imc-analyze {__version__}")
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule_id, (_, _, desc) in sorted(RULES.items()):
            print(f"  {rule_id:<{width}}  {desc}")
        return 0

    for rule_id in args.rule + args.disable:
        if rule_id not in RULES:
            print(f"imc-analyze: unknown rule '{rule_id}' "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
    enabled = [r for r in RULES
               if (not args.rule or r in args.rule)
               and r not in args.disable]

    targets = args.paths
    if not targets:
        root = repo_root_for(os.getcwd())
        targets = [os.path.join(root, t) for t in DEFAULT_TARGETS
                   if os.path.isdir(os.path.join(root, t))]
    files, missing = discover(targets)
    if missing:
        for m in missing:
            print(f"imc-analyze: no such file or directory: {m}",
                  file=sys.stderr)
        return 2
    if not files:
        print("imc-analyze: no C++ sources found", file=sys.stderr)
        return 2

    repo_root = repo_root_for(files[0])
    all_findings = []
    lines_by_path = {}
    for path in files:
        findings, raw_lines = analyze_file(path, enabled)
        all_findings.extend(findings)
        lines_by_path[path] = raw_lines

    if args.backend == "libclang":
        if clang_backend.available():
            all_findings, verified = clang_backend.refine_unordered(
                all_findings)
            print(f"imc-analyze: libclang backend verified {verified} "
                  "unordered-iteration finding(s)")
        else:
            print("imc-analyze: libclang bindings not installed; "
                  "continuing with the token backend", file=sys.stderr)

    def line_text(f):
        lines = lines_by_path.get(f.path, [])
        return lines[f.line - 1] if 0 < f.line <= len(lines) else ""

    with_prints = [
        (f, baseline_mod.fingerprint(f, repo_root, line_text(f)))
        for f in all_findings
    ]

    if args.write_baseline:
        baseline_mod.save(args.write_baseline, with_prints)
        print(f"imc-analyze: wrote baseline with {len(with_prints)} "
              f"finding(s) to {args.write_baseline}")
        return 0

    known = {}
    if args.baseline:
        try:
            known = baseline_mod.load(args.baseline)
        except (ValueError, OSError) as e:
            print(f"imc-analyze: {e}", file=sys.stderr)
            return 2

    fresh = [(f, fp) for f, fp in with_prints if fp not in known]
    baselined = len(with_prints) - len(fresh)

    if args.sarif:
        sarif_mod.write(args.sarif, [f for f, _ in fresh], repo_root)

    for f, _ in sorted(fresh, key=lambda p: (p[0].path, p[0].line,
                                             p[0].rule)):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        print(f"    fix: {f.hint}")

    tail = f" ({baselined} baselined)" if baselined else ""
    if fresh:
        print(f"\nimc-analyze: {len(fresh)} finding(s) in {len(files)} "
              f"file(s){tail}. Suppress intentional ones with "
              "`imc-analyze: allow(<rule>)` and a justification.")
        return 1
    print(f"imc-analyze: {len(files)} file(s) clean, "
          f"{len(enabled)} rule(s){tail}")
    return 0
