"""imc-analyze — determinism & coroutine-safety static analysis.

Machine-enforces the invariants the benchmark suite's contracts depend on
(byte-identical stdout at any IMC_THREADS, schedule-invariant digests,
leak-free teardown). See DESIGN.md §12 for the invariant catalogue and
tests/analyze/ for the fixture corpus that pins each rule's behaviour.
"""

__version__ = "1.0.0"
