"""Optional libclang cross-check backend.

When python bindings for libclang are installed (`pip install libclang`,
not part of the CI image), `--backend libclang` re-verifies the
token-level unordered-iteration findings against a real AST: a finding is
kept only if the loop's range expression's type actually names an
unordered container. Without libclang the tokenizer backend stands alone —
the import is attempted lazily and failure degrades to a no-op with a
notice, so the tool never gains a hard dependency.
"""


def available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def refine_unordered(findings, compile_args=None):
    """Drops unordered-iteration findings whose range type is not actually
    an unordered container, per libclang. Non-unordered-iteration findings
    pass through untouched. Returns (findings, verified_count)."""
    if not available():
        return findings, 0

    import clang.cindex as ci

    kept, verified = [], 0
    by_file = {}
    for f in findings:
        if f.rule == "unordered-iteration":
            by_file.setdefault(f.path, []).append(f)
        else:
            kept.append(f)
    if not by_file:
        return findings, 0

    index = ci.Index.create()
    args = list(compile_args or ["-std=c++20", "-Isrc"])
    for path, file_findings in by_file.items():
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            kept.extend(file_findings)  # cannot parse: keep, do not hide
            continue
        loop_lines = set()
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != ci.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            children = list(cursor.get_children())
            if not children:
                continue
            range_type = children[-2].type.get_canonical().spelling \
                if len(children) >= 2 else ""
            if "unordered_" in range_type:
                loop_lines.add(cursor.location.line)
        for f in file_findings:
            if f.line in loop_lines:
                verified += 1
                kept.append(f)
            # else: token backend misidentified the range type; drop.
    return kept, verified
