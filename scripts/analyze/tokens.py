"""C++ tokenizer for imc-analyze.

Not a full lexer — a token stream good enough to reason about the
constructs the rules care about, which regexes over raw lines are not:

  * comments, string/char literals, and raw strings (R"delim(...)delim")
    are consumed so their contents can never produce findings;
  * identifiers are single tokens, so `runtime(` never matches a ban on
    `time(` and `my_rand(` never matches `rand(`;
  * preprocessor lines (including backslash continuations) are tagged so
    rules can skip macro definitions and includes;
  * every token carries (line, col) and the stream records brace depth,
    which gives the rules scope extents for free.

The tokenizer is deliberately standalone (no external deps) so it runs on
the bare python3 in the CI image.
"""

import re
from dataclasses import dataclass

# Token kinds.
ID = "id"          # identifiers and keywords
NUM = "num"        # numeric literals
STR = "str"        # string literal (text is the quoted form, contents kept)
CHAR = "char"      # character literal
PUNCT = "punct"    # operators and punctuation

# Multi-character operators that matter for the rules (longest first).
_PUNCTS = [
    "->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",
]

_ID_START = re.compile(r"[A-Za-z_]")
_ID_CONT = re.compile(r"[A-Za-z0-9_]")
_RAW_STR = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]*)\(')
_STR_PREFIX = re.compile(r'(?:u8|[uUL])?"')


@dataclass
class Token:
    kind: str
    text: str
    line: int          # 1-based
    col: int           # 0-based
    preproc: bool      # True if the token sits on a preprocessor line
    depth: int = 0     # brace depth *before* this token is consumed

    def __repr__(self):
        return f"{self.text!r}@{self.line}"


class TokenStream:
    """Tokens plus the structural helpers rules lean on."""

    def __init__(self, tokens, text):
        self.tokens = tokens
        self.text = text
        self._brace_match = self._match_pairs("{", "}")
        self._paren_match = self._match_pairs("(", ")")

    def _match_pairs(self, open_ch, close_ch):
        match, stack = {}, []
        for i, tok in enumerate(self.tokens):
            if tok.kind != PUNCT or tok.preproc:
                continue
            if tok.text == open_ch:
                stack.append(i)
            elif tok.text == close_ch and stack:
                match[stack.pop()] = i
        return match

    def match_brace(self, i):
        """Index of the `}` matching the `{` at index i, or None."""
        return self._brace_match.get(i)

    def match_paren(self, i):
        """Index of the `)` matching the `(` at index i, or None."""
        return self._paren_match.get(i)

    def prev_code(self, i):
        """Index of the previous non-preproc token before i, or None."""
        j = i - 1
        while j >= 0:
            if not self.tokens[j].preproc:
                return j
            j -= 1
        return None

    def next_code(self, i):
        """Index of the next non-preproc token after i, or None."""
        j = i + 1
        while j < len(self.tokens):
            if not self.tokens[j].preproc:
                return j
            j += 1
        return None

    def enclosing_scope(self, i):
        """(open, close) indices of the innermost braces around token i.

        Returns (None, None) at file scope.
        """
        best = (None, None)
        for open_i, close_i in self._brace_match.items():
            if open_i < i < close_i:
                if best[0] is None or open_i > best[0]:
                    best = (open_i, close_i)
        return best

    def scope_end(self, i):
        """Index one past the innermost scope containing token i (the
        matching `}`), or len(tokens) at file scope."""
        _, close_i = self.enclosing_scope(i)
        return close_i if close_i is not None else len(self.tokens)


def tokenize(text):
    """Tokenize C++ source into a TokenStream."""
    tokens = []
    i, n = 0, len(text)
    line, line_start = 1, 0
    depth = 0
    in_preproc = False

    def col(pos):
        return pos - line_start

    while i < n:
        c = text[i]

        if c == "\n":
            # A preprocessor line ends here unless continued with `\`.
            if in_preproc and (i == 0 or text[i - 1] != "\\"):
                in_preproc = False
            line += 1
            i += 1
            line_start = i
            continue

        if c in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            i = min(i + 2, n)
            continue

        # Preprocessor line start.
        if c == "#" and not in_preproc:
            stripped_prefix = text[line_start:i].strip()
            if stripped_prefix == "":
                in_preproc = True
            tokens.append(Token(PUNCT, "#", line, col(i), in_preproc, depth))
            i += 1
            continue

        # Raw strings.
        m = _RAW_STR.match(text, i)
        if m:
            delim = m.group(1)
            end = text.find(")" + delim + '"', m.end())
            end = n if end == -1 else end + len(delim) + 2
            tokens.append(Token(STR, text[i:end], line, col(i), in_preproc,
                                depth))
            line += text.count("\n", i, end)
            nl = text.rfind("\n", i, end)
            if nl != -1:
                line_start = nl + 1
            i = end
            continue

        # Ordinary strings (with prefix) and chars.
        m = _STR_PREFIX.match(text, i)
        if m or c == '"':
            start = i
            i = m.end() if m else i + 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            i = min(i + 1, n)
            tokens.append(Token(STR, text[start:i], line, col(start),
                                in_preproc, depth))
            continue
        if c == "'":
            start = i
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i = min(i + 1, n)
            tokens.append(Token(CHAR, text[start:i], line, col(start),
                                in_preproc, depth))
            continue

        # Identifiers / keywords.
        if _ID_START.match(c):
            start = i
            while i < n and _ID_CONT.match(text[i]):
                i += 1
            tokens.append(Token(ID, text[start:i], line, col(start),
                                in_preproc, depth))
            continue

        # Numbers (digits plus the usual suffix soup; ' separators too).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            while i < n and (text[i].isalnum() or text[i] in "._'"
                             or (text[i] in "+-" and text[i - 1] in "eEpP")):
                i += 1
            tokens.append(Token(NUM, text[start:i], line, col(start),
                                in_preproc, depth))
            continue

        # Punctuation.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line, col(i), in_preproc,
                                    depth))
                i += len(p)
                break
        else:
            if c == "{" and not in_preproc:
                tokens.append(Token(PUNCT, c, line, col(i), in_preproc,
                                    depth))
                depth += 1
            elif c == "}" and not in_preproc:
                depth = max(0, depth - 1)
                tokens.append(Token(PUNCT, c, line, col(i), in_preproc,
                                    depth))
            else:
                tokens.append(Token(PUNCT, c, line, col(i), in_preproc,
                                    depth))
            i += 1

    return TokenStream(tokens, text)
