#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every table
# and figure of the paper. Set IMC_FULL_SCALE=1 for the paper's complete
# processor ladders (adds tens of minutes on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/bench_*; do
  "$b"
done 2>&1 | tee bench_output.txt

echo
echo "Examples:"
for e in quickstart lammps_msd laplace_mta synthetic_layout hardened_staging; do
  echo "--- $e ---"
  "./build/examples/$e"
done
