#!/usr/bin/env python3
"""Benchmark-regression baseline runner.

Builds the benches in Release mode, runs the microbenchmarks
(google-benchmark JSON) plus the fig/tab scenario benches, and writes a
machine-readable summary so later changes can be diffed against a committed
baseline (BENCH_perf.json at the repo root).

Per-scenario records hold the wall-clock seconds and a sha256 over stdout:
the scenario output is fully deterministic (virtual times, bytes, modeled
metrics), so the hash doubles as a fingerprint of the simulated results —
a perf-only change must keep every stdout_sha256 stable while moving only
wall_seconds.

The full mode runs every scenario twice — IMC_THREADS=1 (the sequential
path) and IMC_THREADS=N (the sweep pool) — asserts the stdout hashes are
byte-identical, and records both wall-clocks plus the derived sweep
speedup. Smoke mode runs once under whatever IMC_THREADS the caller set
(recorded in the report) so CI can diff the hashes across thread counts.

Modes:
  full (default)   all benches; writes BENCH_perf.json at the repo root
  --smoke          CI gate: hot-path microbenches + two fast scenarios,
                   asserts everything runs and emits valid JSON; writes
                   into the build directory only

Usage: scripts/bench.py [--smoke] [--build-dir DIR] [--out FILE]
"""

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCENARIOS = [
    "bench_fig2_end_to_end",
    "bench_fig3_problem_size",
    "bench_fig4_rdma_limits",
    "bench_fig5_memory_timeline",
    "bench_fig6_index_cost",
    "bench_fig7_memory_breakdown",
    "bench_fig8_data_layout",
    "bench_fig9_layout_impact",
    "bench_fig10_transport",
    "bench_fig11_decaf_servers",
    "bench_fig12_ds_servers",
    "bench_fig13_shared_memory",
    "bench_tab1_configurations",
    "bench_tab3_usability",
    "bench_tab4_robustness",
    "bench_tab5_findings",
    "bench_ablation",
    "bench_ext_gpu",
]
SMOKE_SCENARIOS = ["bench_tab1_configurations", "bench_fig6_index_cost"]

MICRO_FILTER = ("BM_BoxQuery|BM_SlabCopy|BM_SlabFillSynthetic|"
                "BM_EngineSameInstantChurn|BM_EngineEventThroughput")

# (derived key, numerator bench, denominator bench): speedup = num / den.
SPEEDUPS = [
    ("box_query_speedup", "BM_BoxQueryScan", "BM_BoxQueryIndex"),
    ("slab_copy_speedup", "BM_SlabCopyNaive/64", "BM_SlabCopyStrided/64"),
    ("slab_fill_synthetic_speedup", "BM_SlabFillSyntheticNaive/64",
     "BM_SlabFillSyntheticStrided/64"),
]


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def configure_and_build(build_dir, targets, jobs):
    configure = [
        "cmake", "-B", build_dir, "-S", REPO,
        "-DCMAKE_BUILD_TYPE=Release", "-DIMC_CHECK=OFF",
    ]
    generator = os.environ.get("CMAKE_GENERATOR")
    if generator:
        configure += ["-G", generator]
    run(configure, stdout=subprocess.DEVNULL)
    run(["cmake", "--build", build_dir, "-j", str(jobs), "--target"] + targets)


def run_micro(build_dir, smoke, timeout):
    cmd = [os.path.join(build_dir, "bench", "bench_micro"),
           "--benchmark_format=json"]
    if smoke:
        cmd.append("--benchmark_filter=" + MICRO_FILTER)
        cmd.append("--benchmark_min_time=0.05")
    out = run(cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
              timeout=timeout).stdout
    report = json.loads(out)  # raises on malformed output: the smoke gate
    micro = {}
    for entry in report.get("benchmarks", []):
        record = {"real_time_ns": entry["real_time"],
                  "cpu_time_ns": entry["cpu_time"]}
        for extra in ("items_per_second", "bytes_per_second"):
            if extra in entry:
                record[extra] = entry[extra]
        micro[entry["name"]] = record
    return micro


def derive(micro):
    derived = {}
    for key, numerator, denominator in SPEEDUPS:
        if numerator in micro and denominator in micro:
            derived[key] = round(
                micro[numerator]["real_time_ns"] /
                micro[denominator]["real_time_ns"], 2)
    throughput = micro.get("BM_EngineEventThroughput/100000")
    if throughput and "items_per_second" in throughput:
        derived["event_throughput_items_per_s"] = round(
            throughput["items_per_second"])
    churn = micro.get("BM_EngineSameInstantChurn/4096")
    if churn and "items_per_second" in churn:
        derived["same_instant_items_per_s"] = round(churn["items_per_second"])
    return derived


def run_scenarios(build_dir, names, timeout, threads=None):
    """Runs each scenario bench; threads pins IMC_THREADS for the run."""
    env = dict(os.environ)
    if threads is not None:
        env["IMC_THREADS"] = str(threads)
    label = f" [IMC_THREADS={threads}]" if threads is not None else ""
    results = {}
    for name in names:
        path = os.path.join(build_dir, "bench", name)
        start = time.monotonic()
        proc = run([path], stdout=subprocess.PIPE,
                   stderr=subprocess.DEVNULL, timeout=timeout, env=env)
        elapsed = time.monotonic() - start
        results[name] = {
            "wall_seconds": round(elapsed, 3),
            "stdout_sha256": hashlib.sha256(proc.stdout).hexdigest(),
            "stdout_lines": proc.stdout.count(b"\n"),
        }
        print(f"  {name}{label}: {elapsed:.2f}s, "
              f"{results[name]['stdout_lines']} lines", flush=True)
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI gate: microbench subset + two scenarios")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO, "build-bench"))
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_perf.json at "
                             "the repo root, or the build dir for --smoke)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    scenarios = SMOKE_SCENARIOS if args.smoke else SCENARIOS
    per_bench_timeout = 120 if args.smoke else 600
    out_path = args.out or (
        os.path.join(args.build_dir, "BENCH_smoke.json") if args.smoke
        else os.path.join(REPO, "BENCH_perf.json"))

    configure_and_build(args.build_dir, ["bench_micro"] + scenarios,
                        args.jobs)
    micro = run_micro(args.build_dir, args.smoke, per_bench_timeout)
    derived = derive(micro)

    if args.smoke:
        # One pass under the caller's IMC_THREADS (recorded below so CI can
        # run the gate at several thread counts and diff the hashes).
        scenario_results = run_scenarios(args.build_dir, scenarios,
                                         per_bench_timeout)
        sweep_threads = os.environ.get("IMC_THREADS", "default")
    else:
        # Sequential pass then sweep-pool pass; stdout must be
        # byte-identical (the determinism contract of src/sweep/) and the
        # wall-clock ratio is the measured sweep speedup.
        sweep_threads = min(8, max(2, os.cpu_count() or 2))
        scenario_results = run_scenarios(args.build_dir, scenarios,
                                         per_bench_timeout, threads=1)
        threaded = run_scenarios(args.build_dir, scenarios,
                                 per_bench_timeout, threads=sweep_threads)
        mismatched = [n for n in scenarios
                      if scenario_results[n]["stdout_sha256"]
                      != threaded[n]["stdout_sha256"]]
        if mismatched:
            print(f"FAIL: stdout differs between IMC_THREADS=1 and "
                  f"IMC_THREADS={sweep_threads}: {mismatched}",
                  file=sys.stderr)
            return 1
        seq_total = sum(scenario_results[n]["wall_seconds"]
                        for n in scenarios)
        par_total = sum(threaded[n]["wall_seconds"] for n in scenarios)
        for name in scenarios:
            scenario_results[name]["wall_seconds_threaded"] = \
                threaded[name]["wall_seconds"]
        derived["sweep_threads"] = sweep_threads
        derived["sweep_speedup"] = round(seq_total / par_total, 2) \
            if par_total > 0 else 0.0

    report = {
        "schema": "imc-bench-perf-v1",
        "mode": "smoke" if args.smoke else "full",
        "build_type": "Release",
        "sweep_threads": sweep_threads,
        "derived": derived,
        "micro": micro,
        "scenarios": scenario_results,
    }
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if not micro:
        print("FAIL: no microbenchmark results", file=sys.stderr)
        return 1
    if args.smoke:
        missing = [k for k, _, _ in SPEEDUPS if k not in derived]
        if missing:
            print(f"FAIL: missing derived metrics: {missing}",
                  file=sys.stderr)
            return 1
        # Round-trip the file to prove the artifact itself is valid JSON.
        with open(out_path, encoding="utf-8") as f:
            json.load(f)
    for key, value in sorted(derived.items()):
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
