#!/usr/bin/env python3
"""Benchmark-regression baseline runner.

Builds the benches in Release mode, runs the microbenchmarks
(google-benchmark JSON) plus the fig/tab scenario benches, and writes a
machine-readable summary so later changes can be diffed against a committed
baseline (BENCH_perf.json at the repo root).

Per-scenario records hold the wall-clock seconds and a sha256 over stdout:
the scenario output is fully deterministic (virtual times, bytes, modeled
metrics), so the hash doubles as a fingerprint of the simulated results —
a perf-only change must keep every stdout_sha256 stable while moving only
wall_seconds.

The full mode runs every scenario at IMC_THREADS=1 (the sequential path)
and then at each sweep width in SWEEP_SCALING_THREADS, asserts the stdout
hashes are byte-identical at every width, and records the per-thread
scaling table (derived.sweep_scaling) plus `sweep_speedup`, the entry for
the width closest to the machine's core count. Smoke mode runs once under
whatever IMC_THREADS the caller set (recorded in the report) so CI can
diff the hashes across thread counts.

Modes:
  full (default)   all benches; writes BENCH_perf.json at the repo root
  --smoke          CI gate: hot-path microbenches + two fast scenarios,
                   asserts everything runs and emits valid JSON; writes
                   into the build directory only

Usage: scripts/bench.py [--smoke] [--build-dir DIR] [--out FILE]
"""

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCENARIOS = [
    "bench_fig2_end_to_end",
    "bench_fig3_problem_size",
    "bench_fig4_rdma_limits",
    "bench_fig5_memory_timeline",
    "bench_fig6_index_cost",
    "bench_fig7_memory_breakdown",
    "bench_fig8_data_layout",
    "bench_fig9_layout_impact",
    "bench_fig10_transport",
    "bench_fig11_decaf_servers",
    "bench_fig12_ds_servers",
    "bench_fig13_shared_memory",
    "bench_tab1_configurations",
    "bench_tab3_usability",
    "bench_tab4_robustness",
    "bench_tab5_findings",
    "bench_ablation",
    "bench_ext_gpu",
    "bench_ext_chaos",
]
SMOKE_SCENARIOS = ["bench_tab1_configurations", "bench_fig6_index_cost"]

# Full-mode sweep widths: every scenario re-runs at each width and the
# speedup over the sequential pass lands in derived.sweep_scaling. The
# table is honest about the host — on a single-core box every entry sits
# near (or below) 1.0 and that is the correct measurement, not a failure.
SWEEP_SCALING_THREADS = (2, 4, 8)

MICRO_FILTER = ("BM_BoxQuery|BM_SlabCopy|BM_SlabFillSynthetic|"
                "BM_EngineSameInstantChurn|BM_EngineEventThroughput|"
                "BM_TraceSpan|BM_ProfTimer")

# (derived key, numerator bench, denominator bench): speedup = num / den.
SPEEDUPS = [
    ("box_query_speedup", "BM_BoxQueryScan", "BM_BoxQueryIndex"),
    ("slab_copy_speedup", "BM_SlabCopyNaive/64", "BM_SlabCopyStrided/64"),
    ("slab_fill_synthetic_speedup", "BM_SlabFillSyntheticNaive/64",
     "BM_SlabFillSyntheticStrided/64"),
]

# Disabled-hook overhead guards: each probe bench times one unbound hook
# (TRACE_SPAN with no recorder, PROF_TIMER with no meter — a thread-local
# null check, single-digit ns, near-zero variance); the guard asserts that
# cost stays under the budget relative to each hot kernel — the ratio
# models a disabled hook wrapped around every kernel invocation.
# Differencing two separately-timed ~200 µs kernel runs (the Traced /
# Profiled micro variants, kept for eyeballing) cannot resolve 2% on a
# shared machine whose run-to-run jitter exceeds 10%.
OVERHEAD_KERNELS = [
    ("box_query", "BM_BoxQueryIndex"),
    ("slab_copy", "BM_SlabCopyStrided/64"),
]
OVERHEAD_GUARDS = [
    ("trace_off_overhead", "BM_TraceSpanDisabled"),
    ("prof_off_overhead", "BM_ProfTimerDisabled"),
]
OVERHEAD_LIMIT = 1.02
OVERHEAD_FILTER = ("BM_TraceSpanDisabled$|BM_ProfTimerDisabled$|"
                   "BM_BoxQueryIndex$|BM_SlabCopyStrided/64$")

# Scenarios re-run with IMC_TRACE on at each of these thread counts in full
# mode; the exported metric digests must be byte-identical across the set.
# Must be benches that actually run workflows (a binary that never fires a
# trace hook never instantiates the env sink, so no file is written).
# The per-run event cap bounds the fig2 artifact to tens of MB; the cap
# feeds the digest, so it is pinned here rather than inherited.
TRACE_DIGEST_SCENARIOS = ["bench_tab4_robustness", "bench_fig11_decaf_servers",
                          "bench_fig2_end_to_end", "bench_ext_chaos"]
TRACE_DIGEST_THREADS = (1, 2, 8)
TRACE_DIGEST_EVENT_CAP = "4096"


# bench_ext_chaos emits one machine-parseable line per (method, plan) cell;
# the per-scenario recovery metrics (retries ridden out, injected faults,
# MPI-IO fallback activations, virtual time-to-recover) land in the report
# next to the stdout hash so chaos-recovery regressions diff like perf ones.
RECOVERY_LINE = re.compile(rb"^recovery: (.+)$", re.MULTILINE)
# bench_ext_chaos' replication sweep emits one `durability:` line per
# (factor, crash plan) cell: objects lost, degraded gets, resilver volume,
# and time-to-restore-redundancy — the durability metrics of DESIGN.md §15,
# recorded so replication regressions diff like perf ones.
DURABILITY_LINE = re.compile(rb"^durability: (.+)$", re.MULTILINE)
CHAOS_DIGEST_LINE = re.compile(rb"^chaos-invariant-digest: (0x[0-9a-f]+)$",
                               re.MULTILINE)


def parse_kv_lines(stdout, pattern):
    """Parses `<prefix>: k=v ...` lines into a list of typed records."""
    records = []
    for match in pattern.finditer(stdout):
        record = {}
        for pair in match.group(1).decode().split():
            key, _, value = pair.partition("=")
            try:
                record[key] = int(value)
            except ValueError:
                try:
                    record[key] = float(value)
                except ValueError:
                    record[key] = value
        records.append(record)
    return records


def parse_recovery(stdout):
    return parse_kv_lines(stdout, RECOVERY_LINE)


def parse_durability(stdout):
    return parse_kv_lines(stdout, DURABILITY_LINE)


def host_info():
    """Host descriptor recorded into every report (mirrors prof::host()).

    Committed numbers are only interpretable against the machine that
    produced them — the committed sweep_scaling table came from a 1-core
    box, and without this block nobody could tell. imc-report.py keys its
    per-host regression history on (cpu_model, cores).
    """
    cpu_model = "unknown"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as f:
            for line in f:
                if line.startswith("model name"):
                    cpu_model = line.partition(":")[2].strip()
                    break
    except OSError:
        pass
    try:
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):
        page_size = 0
    return {
        "cores": os.cpu_count() or 0,
        "cpu_model": cpu_model,
        "page_size": page_size,
        "platform": sys.platform,
    }


def run(cmd, **kwargs):
    print("+", " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def configure_and_build(build_dir, targets, jobs):
    configure = [
        "cmake", "-B", build_dir, "-S", REPO,
        "-DCMAKE_BUILD_TYPE=Release", "-DIMC_CHECK=OFF",
    ]
    generator = os.environ.get("CMAKE_GENERATOR")
    if generator:
        configure += ["-G", generator]
    run(configure, stdout=subprocess.DEVNULL)
    run(["cmake", "--build", build_dir, "-j", str(jobs), "--target"] + targets)


def run_micro(build_dir, smoke, timeout, bench_filter=None, min_time=None):
    cmd = [os.path.join(build_dir, "bench", "bench_micro"),
           "--benchmark_format=json"]
    if smoke:
        bench_filter = bench_filter or MICRO_FILTER
        min_time = min_time or 0.05
    if bench_filter:
        cmd.append("--benchmark_filter=" + bench_filter)
    if min_time:
        cmd.append(f"--benchmark_min_time={min_time}")
    out = run(cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
              timeout=timeout).stdout
    report = json.loads(out)  # raises on malformed output: the smoke gate
    micro = {}
    for entry in report.get("benchmarks", []):
        record = {"real_time_ns": entry["real_time"],
                  "cpu_time_ns": entry["cpu_time"]}
        for extra in ("items_per_second", "bytes_per_second"):
            if extra in entry:
                record[extra] = entry[extra]
        micro[entry["name"]] = record
    return micro


def derive(micro):
    derived = {}
    for key, numerator, denominator in SPEEDUPS:
        if numerator in micro and denominator in micro:
            derived[key] = round(
                micro[numerator]["real_time_ns"] /
                micro[denominator]["real_time_ns"], 2)
    throughput = micro.get("BM_EngineEventThroughput/100000")
    if throughput and "items_per_second" in throughput:
        derived["event_throughput_items_per_s"] = round(
            throughput["items_per_second"])
    churn = micro.get("BM_EngineSameInstantChurn/4096")
    if churn and "items_per_second" in churn:
        derived["same_instant_items_per_s"] = round(churn["items_per_second"])
    for prefix, probe in OVERHEAD_GUARDS:
        if probe not in micro:
            continue
        probe_ns = micro[probe]["real_time_ns"]
        for suffix, kernel in OVERHEAD_KERNELS:
            if kernel in micro:
                derived[f"{prefix}_{suffix}"] = round(
                    (micro[kernel]["real_time_ns"] + probe_ns) /
                    micro[kernel]["real_time_ns"], 3)
    return derived


def check_disabled_overhead(build_dir, micro, timeout, attempts=3):
    """Asserts every disabled-hook overhead stays under the budget.

    Ratio per (probe, kernel): (kernel + disabled hook) / kernel, both
    taken from the same micro pass so kernel jitter cancels. On a miss the
    probe and kernel benches are re-timed with a longer min_time and the
    per-bench minimum across runs is kept (the minimum is the noise-free
    estimate). Returns the final ratios, or None if the budget still fails.
    """
    names = ([probe for _, probe in OVERHEAD_GUARDS] +
             [k for _, k in OVERHEAD_KERNELS])
    times = {name: micro[name]["real_time_ns"]
             for name in names if name in micro}

    def ratios():
        out = {}
        for prefix, probe in OVERHEAD_GUARDS:
            if probe not in times:
                return {}
            for suffix, kernel in OVERHEAD_KERNELS:
                if kernel in times:
                    out[f"{prefix}_{suffix}"] = \
                        (times[kernel] + times[probe]) / times[kernel]
        return out

    for attempt in range(attempts):
        current = ratios()
        if current and all(r <= OVERHEAD_LIMIT for r in current.values()):
            return current
        print(f"  disabled-hook overhead above {OVERHEAD_LIMIT}: "
              f"{current} (retry {attempt + 1}/{attempts - 1})", flush=True)
        rerun = run_micro(build_dir, smoke=False, timeout=timeout,
                          bench_filter=OVERHEAD_FILTER, min_time=0.5)
        for name, record in rerun.items():
            times[name] = min(times.get(name, record["real_time_ns"]),
                              record["real_time_ns"])
    current = ratios()
    if current and all(r <= OVERHEAD_LIMIT for r in current.values()):
        return current
    return None


def run_scenarios(build_dir, names, timeout, threads=None):
    """Runs each scenario bench; threads pins IMC_THREADS for the run."""
    env = dict(os.environ)
    if threads is not None:
        env["IMC_THREADS"] = str(threads)
    label = f" [IMC_THREADS={threads}]" if threads is not None else ""
    results = {}
    for name in names:
        path = os.path.join(build_dir, "bench", name)
        start = time.monotonic()
        proc = run([path], stdout=subprocess.PIPE,
                   stderr=subprocess.DEVNULL, timeout=timeout, env=env)
        elapsed = time.monotonic() - start
        results[name] = {
            "wall_seconds": round(elapsed, 3),
            "stdout_sha256": hashlib.sha256(proc.stdout).hexdigest(),
            "stdout_lines": proc.stdout.count(b"\n"),
        }
        recovery = parse_recovery(proc.stdout)
        if recovery:
            results[name]["recovery"] = recovery
            digest = CHAOS_DIGEST_LINE.search(proc.stdout)
            if digest:
                results[name]["chaos_invariant_digest"] = \
                    digest.group(1).decode()
        durability = parse_durability(proc.stdout)
        if durability:
            results[name]["durability"] = durability
        print(f"  {name}{label}: {elapsed:.2f}s, "
              f"{results[name]['stdout_lines']} lines", flush=True)
    return results


def run_trace_digests(build_dir, names, timeout):
    """Runs scenarios with IMC_TRACE on across thread counts; returns
    per-scenario records, or None if any digest differs between counts.

    The exported metric digest is the determinism fingerprint of the trace
    layer: byte-identical simulated-time streams at every sweep width.
    """
    results = {}
    for name in names:
        path = os.path.join(build_dir, "bench", name)
        digests = {}
        runs = 0
        for threads in TRACE_DIGEST_THREADS:
            trace_path = os.path.join(build_dir,
                                      f"{name}.trace.t{threads}.json")
            env = dict(os.environ)
            env["IMC_THREADS"] = str(threads)
            env["IMC_TRACE"] = trace_path
            env["IMC_TRACE_EVENTS"] = TRACE_DIGEST_EVENT_CAP
            run([path], stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, timeout=timeout, env=env)
            with open(trace_path, encoding="utf-8") as f:
                trace = json.load(f)
            digests[threads] = trace["imc"]["digest"]
            runs = len(trace["imc"]["runs"])
            os.remove(trace_path)
        if len(set(digests.values())) != 1:
            print(f"FAIL: {name} trace digest differs across "
                  f"IMC_THREADS={TRACE_DIGEST_THREADS}: {digests}",
                  file=sys.stderr)
            return None
        results[name] = {"trace_digest": digests[TRACE_DIGEST_THREADS[0]],
                         "trace_runs": runs}
        print(f"  {name}: trace digest {results[name]['trace_digest']} "
              f"({runs} runs), identical at IMC_THREADS="
              f"{'/'.join(str(t) for t in TRACE_DIGEST_THREADS)}", flush=True)
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI gate: microbench subset + two scenarios")
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO, "build-bench"))
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: BENCH_perf.json at "
                             "the repo root, or the build dir for --smoke)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    scenarios = SMOKE_SCENARIOS if args.smoke else SCENARIOS
    per_bench_timeout = 120 if args.smoke else 600
    out_path = args.out or (
        os.path.join(args.build_dir, "BENCH_smoke.json") if args.smoke
        else os.path.join(REPO, "BENCH_perf.json"))

    configure_and_build(args.build_dir, ["bench_micro"] + scenarios,
                        args.jobs)
    micro = run_micro(args.build_dir, args.smoke, per_bench_timeout)
    derived = derive(micro)

    if args.smoke:
        # One pass under the caller's IMC_THREADS (recorded below so CI can
        # run the gate at several thread counts and diff the hashes).
        scenario_results = run_scenarios(args.build_dir, scenarios,
                                         per_bench_timeout)
        sweep_threads = os.environ.get("IMC_THREADS", "default")
    else:
        # Sequential pass, then one sweep-pool pass per scaling width;
        # stdout must be byte-identical at every width (the determinism
        # contract of src/sweep/) and each wall-clock ratio lands in the
        # per-thread scaling table. `sweep_speedup` reports the width
        # closest to (but not above) the machine's core count.
        cores = max(2, os.cpu_count() or 2)
        sweep_threads = max(
            (t for t in SWEEP_SCALING_THREADS if t <= cores),
            default=SWEEP_SCALING_THREADS[0])
        scenario_results = run_scenarios(args.build_dir, scenarios,
                                         per_bench_timeout, threads=1)
        seq_total = sum(scenario_results[n]["wall_seconds"]
                        for n in scenarios)
        scaling = {}
        for threads in SWEEP_SCALING_THREADS:
            threaded = run_scenarios(args.build_dir, scenarios,
                                     per_bench_timeout, threads=threads)
            mismatched = [n for n in scenarios
                          if scenario_results[n]["stdout_sha256"]
                          != threaded[n]["stdout_sha256"]]
            if mismatched:
                print(f"FAIL: stdout differs between IMC_THREADS=1 and "
                      f"IMC_THREADS={threads}: {mismatched}",
                      file=sys.stderr)
                return 1
            par_total = sum(threaded[n]["wall_seconds"] for n in scenarios)
            scaling[str(threads)] = round(seq_total / par_total, 2) \
                if par_total > 0 else 0.0
            if threads == sweep_threads:
                for name in scenarios:
                    scenario_results[name]["wall_seconds_threaded"] = \
                        threaded[name]["wall_seconds"]
        derived["sweep_threads"] = sweep_threads
        derived["sweep_scaling"] = scaling
        derived["sweep_speedup"] = scaling[str(sweep_threads)]

        ratios = check_disabled_overhead(args.build_dir, micro,
                                         per_bench_timeout)
        if ratios is None:
            print(f"FAIL: disabled-hook overhead exceeds "
                  f"{OVERHEAD_LIMIT} after retries", file=sys.stderr)
            return 1
        derived.update({k: round(v, 3) for k, v in ratios.items()})

        trace_digests = run_trace_digests(args.build_dir,
                                          TRACE_DIGEST_SCENARIOS,
                                          per_bench_timeout)
        if trace_digests is None:
            return 1
        for name, record in trace_digests.items():
            scenario_results[name].update(record)

    report = {
        "schema": "imc-bench-perf-v1",
        "mode": "smoke" if args.smoke else "full",
        "build_type": "Release",
        "host": host_info(),
        "sweep_threads": sweep_threads,
        "derived": derived,
        "micro": micro,
        "scenarios": scenario_results,
    }
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if not micro:
        print("FAIL: no microbenchmark results", file=sys.stderr)
        return 1
    if args.smoke:
        missing = [k for k, _, _ in SPEEDUPS if k not in derived]
        if missing:
            print(f"FAIL: missing derived metrics: {missing}",
                  file=sys.stderr)
            return 1
        # Round-trip the file to prove the artifact itself is valid JSON.
        with open(out_path, encoding="utf-8") as f:
            json.load(f)
    for key, value in sorted(derived.items()):
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
