#!/usr/bin/env python3
"""Source lint for the simulation substrate.

Flags constructions that break determinism or silently drop errors:

  wall-clock        real-time clocks in simulation code (std::chrono clocks,
                    gettimeofday) — virtual time must come from sim::Engine
  global-rng        std::random_device / std::mt19937 / rand / srand — all
                    randomness must flow through the seeded common/rng.h
  discarded-await   `(void)co_await ...` — throwing away an awaited
                    Status/Result hides failures
  discarded-status  `(void)call(...)` — same, for synchronous calls
  ref-capture-await lambda capturing by reference whose body contains
                    co_await — the frame may outlive the captured locals
  trace-real-time   (path-scoped) any std::chrono / time( / clock_gettime
                    in the trace layer or an instrumented subsystem — trace
                    timestamps must be simulated time from sim::Engine
  adhoc-retry       a for/while loop whose header mentions `attempt` and
                    whose body sleeps — ad-hoc retry loops fork the backoff
                    and jitter policy; outside src/fault/ all retrying must
                    go through fault::retry / fault::ride_out so attempts,
                    timeouts, and dropped ops land in one accounted place

Suppress a finding by putting `imc-lint: allow(<rule>)` in a comment on the
offending line (or the line above), stating why.

Usage: lint.py <dir-or-file>...   (exit 1 if any finding survives)
"""

import os
import re
import sys

RULES = [
    ("wall-clock",
     re.compile(r"std::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)|\bgettimeofday\s*\(")),
    ("global-rng",
     re.compile(r"std::random_device|std::mt19937|\bsrand\s*\(|"
                r"(?<![\w:])rand\s*\(")),
    ("discarded-await", re.compile(r"\(void\)\s*co_await\b")),
    ("discarded-status",
     re.compile(r"\(void\)\s*(?!co_await\b)[A-Za-z_][\w:]*(?:\.|->)?[\w:]*"
                r"\s*\(")),
]

LAMBDA_REF_CAPTURE = re.compile(r"(?<![\w\]])\[\s*&")
RETRY_LOOP = re.compile(r"\b(?:for|while)\s*\(")
SLEEP_CALL = re.compile(r"\bsleep\s*\(")
ALLOW = re.compile(r"imc-lint:\s*allow\(([\w,\s-]+)\)")


def in_fault_layer(path):
    """src/fault/ is the one place retry loops are allowed to live."""
    return "fault" in os.path.normpath(path).split(os.sep)

# Directories where imc::trace records events: src/trace itself plus every
# instrumented subsystem. A real-time call here would stamp wall-clock time
# into a stream whose whole contract is simulated time, so the wall-clock
# ban is broader than the global rule (any std::chrono use, time(),
# clock_gettime). src/sweep drives OS worker threads and is exempt.
TRACE_TIME_DIRS = frozenset({
    "trace", "net", "mem", "dataspaces", "dimes", "flexpath", "decaf",
    "mpi", "lustre", "workflow", "sim",
})


def in_trace_scope(path):
    return not TRACE_TIME_DIRS.isdisjoint(
        os.path.normpath(path).split(os.sep))


# (rule, pattern, path predicate): applied only where the predicate holds.
PATH_RULES = [
    ("trace-real-time",
     re.compile(r"std::chrono\b|\bclock_gettime\s*\(|(?<![\w.])time\s*\("),
     in_trace_scope),
]


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                        i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def allowed_rules(raw_lines, lineno):
    """Suppressions on this line or the line above (1-based lineno)."""
    rules = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = ALLOW.search(raw_lines[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def lambda_body_has_await(code, start):
    """From a `[&` introducer, brace-match the lambda body if one follows."""
    close = code.find("]", start)
    if close == -1:
        return False
    # Skip params / specifiers / trailing return type up to the body brace.
    i = close + 1
    limit = min(len(code), i + 400)
    while i < limit and code[i] != "{":
        if code[i] == ";":
            return False  # not a lambda after all
        i += 1
    if i >= limit or code[i] != "{":
        return False
    depth = 0
    body_start = i
    while i < len(code):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return "co_await" in code[body_start:i]
        i += 1
    return False


def retry_loop_sleeps(code, start):
    """From a `for (` / `while (` match, flag loops that hand-roll backoff.

    Paren-matches the loop header; if it names an attempt counter, brace-
    matches the loop body and reports whether it sleeps (engine.sleep,
    co_await ...sleep(...), etc.) — the shape of an ad-hoc retry loop.
    """
    open_paren = code.find("(", start)
    if open_paren == -1:
        return False
    depth = 0
    i = open_paren
    while i < len(code):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    if i >= len(code):
        return False
    if "attempt" not in code[open_paren:i].lower():
        return False
    # Skip to the loop body; a bare `;` body or statement-loop can't hide a
    # multi-line retry dance, so only braced bodies are scanned.
    j = i + 1
    limit = min(len(code), j + 200)
    while j < limit and code[j] not in "{;":
        j += 1
    if j >= limit or code[j] != "{":
        return False
    depth = 0
    body_start = j
    while j < len(code):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return bool(SLEEP_CALL.search(code[body_start:j]))
        j += 1
    return False


def lint_file(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code = strip_comments_and_strings(text)
    code_lines = code.split("\n")
    findings = []

    for lineno, line in enumerate(code_lines, start=1):
        for rule, pattern in RULES:
            if pattern.search(line) and rule not in allowed_rules(
                    raw_lines, lineno):
                findings.append((path, lineno, rule, raw_lines[lineno - 1]))
        for rule, pattern, applies in PATH_RULES:
            if applies(path) and pattern.search(line) and \
                    rule not in allowed_rules(raw_lines, lineno):
                findings.append((path, lineno, rule, raw_lines[lineno - 1]))

    for m in LAMBDA_REF_CAPTURE.finditer(code):
        lineno = code.count("\n", 0, m.start()) + 1
        if "ref-capture-await" in allowed_rules(raw_lines, lineno):
            continue
        if lambda_body_has_await(code, m.start()):
            findings.append((path, lineno, "ref-capture-await",
                            raw_lines[lineno - 1]))

    if not in_fault_layer(path):
        for m in RETRY_LOOP.finditer(code):
            lineno = code.count("\n", 0, m.start()) + 1
            if "adhoc-retry" in allowed_rules(raw_lines, lineno):
                continue
            if retry_loop_sleeps(code, m.start()):
                findings.append((path, lineno, "adhoc-retry",
                                raw_lines[lineno - 1]))
    return findings


def main(argv):
    targets = argv[1:] or ["src"]
    files = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        if not os.path.isdir(target):
            print(f"lint: no such file or directory: {target}")
            return 2
        for root, _, names in os.walk(target):
            files.extend(
                os.path.join(root, n) for n in names
                if n.endswith((".h", ".cpp", ".cc", ".hpp")))

    findings = []
    for path in sorted(files):
        findings.extend(lint_file(path))

    for path, lineno, rule, line in findings:
        print(f"{path}:{lineno}: [{rule}] {line.strip()}")
    if findings:
        print(f"\n{len(findings)} lint finding(s). Suppress intentional "
              "ones with `imc-lint: allow(<rule>)` and a justification.")
        return 1
    print(f"lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
