#!/usr/bin/env python3
"""Style-only lint for C++ sources.

Semantic rules (determinism hazards, dropped Status, coroutine lifetime)
live in scripts/analyze (imc-analyze), which parses tokens instead of
lines and owns suppressions and the baseline. This file keeps only the
mechanical whitespace checks that need no parsing:

  tab-indent             tab characters anywhere in a source line
  trailing-whitespace    spaces or tabs before the newline
  crlf                   Windows line endings
  missing-final-newline  file does not end with exactly one newline

Usage: lint.py <dir-or-file>...   (exit 1 if any finding)
"""

import os
import sys

EXTENSIONS = (".h", ".cpp", ".cc", ".hpp")

# Default trees, kept in sync with imc-analyze's DEFAULT_TARGETS
# (scripts/analyze/cli.py): both tools cover the same sources so a file
# cannot be semantically gated but style-unchecked (or vice versa). Unlike
# the analyzer, the style lint does NOT exclude tests/analyze/fixtures —
# deliberately-bad semantics still follow whitespace rules.
DEFAULT_TARGETS = ("src", "bench", "tests", "examples")


def lint_file(path):
    with open(path, "rb") as f:
        blob = f.read()
    findings = []
    if b"\r" in blob:
        lineno = blob[:blob.index(b"\r")].count(b"\n") + 1
        findings.append((path, lineno, "crlf", "carriage return found"))
    if blob and not blob.endswith(b"\n"):
        lineno = blob.count(b"\n") + 1
        findings.append((path, lineno, "missing-final-newline",
                         "file must end with a newline"))
    for lineno, line in enumerate(blob.split(b"\n"), start=1):
        stripped = line.rstrip(b"\r")
        if b"\t" in stripped:
            findings.append((path, lineno, "tab-indent",
                             "tab character; use spaces"))
        if stripped != stripped.rstrip():
            findings.append((path, lineno, "trailing-whitespace",
                             "whitespace before end of line"))
    return findings


def main(argv):
    targets = argv[1:] or [t for t in DEFAULT_TARGETS if os.path.isdir(t)]
    files = []
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        if not os.path.isdir(target):
            print(f"lint: no such file or directory: {target}")
            return 2
        for root, _, names in os.walk(target):
            files.extend(os.path.join(root, n) for n in names
                         if n.endswith(EXTENSIONS))

    findings = []
    for path in sorted(files):
        findings.extend(lint_file(path))

    for path, lineno, rule, message in findings:
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"\n{len(findings)} style finding(s).")
        return 1
    print(f"lint: {len(files)} files clean (style)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
