// The data-layout experiment (paper §III-B4, Figs. 8 and 9) as a runnable
// demonstration: the same synthetic workflow staged twice through
// DataSpaces — once with the application decomposition mismatched against
// the staging-region layout (N-to-1 convoy), once matched (N-to-N).
//
//   ./build/examples/synthetic_layout
#include <cstdio>

#include "apps/apps.h"
#include "common/units.h"
#include "dataspaces/regions.h"
#include "workflow/workflow.h"

using namespace imc;

namespace {

void print_layout(bool matched, int nprocs, int num_servers) {
  apps::SyntheticWriter::Params p;
  p.nprocs = nprocs;
  p.match_staging_layout = matched;
  apps::SyntheticWriter writer(p);
  const nda::Dims global = writer.output_desc(0).global;
  auto regions = dataspaces::staging_regions(global, num_servers);

  std::printf("  global %s; %zu staging regions along dim %d\n",
              nda::Box::whole(global).to_string().c_str(), regions.size(),
              nda::longest_dim(global));
  // How many staging servers does each writer touch, and in what order?
  apps::SyntheticWriter::Params q = p;
  q.rank = 0;
  apps::SyntheticWriter rank0(q);
  auto touched = nda::intersecting(regions, rank0.my_box());
  std::printf("  writer rank 0 touches %zu region(s):", touched.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(touched.size(), 4); ++i) {
    std::printf(" S%d", dataspaces::server_of_region(touched[i].first,
                                                     num_servers));
  }
  std::printf("%s\n", touched.size() > 4 ? " ..." : "");
}

}  // namespace

int main() {
  constexpr int kSim = 16, kAna = 8, kServers = 4;

  workflow::Spec spec;
  spec.app = workflow::AppSel::kSynthetic;
  spec.method = workflow::MethodSel::kDataspacesNative;
  spec.machine = hpc::titan();
  spec.nsim = kSim;
  spec.nana = kAna;
  spec.num_servers = kServers;
  spec.steps = 3;
  spec.synthetic_elements_per_proc = 2'560'000;  // 20 MB per rank

  std::printf("== Mismatched layout (the paper's default: app splits dim 1, "
              "DataSpaces splits dim 2) ==\n");
  print_layout(false, kSim, kServers);
  spec.synthetic_match_layout = false;
  auto mismatched = workflow::run(spec);
  if (!mismatched.ok) {
    std::fprintf(stderr, "run failed: %s\n",
                 mismatched.failure_summary().c_str());
    return 1;
  }
  std::printf("  staging time per writer: %s\n\n",
              format_time(mismatched.sim_staging).c_str());

  std::printf("== Matched layout (app decomposes the dimension DataSpaces "
              "cuts) ==\n");
  print_layout(true, kSim, kServers);
  spec.synthetic_match_layout = true;
  auto matched = workflow::run(spec);
  if (!matched.ok) {
    std::fprintf(stderr, "run failed: %s\n", matched.failure_summary().c_str());
    return 1;
  }
  std::printf("  staging time per writer: %s\n\n",
              format_time(matched.sim_staging).c_str());

  std::printf("Matching the decomposition improves staging by %.1fx "
              "(paper reports up to 5.3x at scale).\n",
              mismatched.sim_staging / matched.sim_staging);
  return 0;
}
