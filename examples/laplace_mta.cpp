// The Laplace + moment-turbulence-analysis workflow (Table II), configured
// through an ADIOS XML document — the way the paper's domain scientists
// drive these libraries.
//
//   ./build/examples/laplace_mta
//
// Demonstrates: XML group/method configuration, the Flexpath pub/sub path
// with queue_size=1 back-pressure, and real Jacobi data flowing to the MTA.
#include <cstdio>

#include "adios/adios.h"
#include "common/units.h"
#include "workflow/workflow.h"

using namespace imc;

namespace {

constexpr const char* kWorkflowConfig = R"(<?xml version="1.0"?>
<adios-config host-language="C">
  <adios-group name="laplace">
    <var name="field" dimensions="4096,ncols" type="double"/>
  </adios-group>
  <method group="laplace" method="FLEXPATH" parameters="queue_size=1"/>
  <buffer size-MB="320"/>
  <analysis stats="on"/>
</adios-config>)";

}  // namespace

int main() {
  // Parse the configuration exactly as adios_init would.
  auto config = adios::parse_config(kWorkflowConfig);
  if (!config.has_value()) {
    std::fprintf(stderr, "config error: %s\n",
                 config.status().to_string().c_str());
    return 1;
  }
  const adios::GroupDecl* group = config->group("laplace");
  auto dims = adios::resolve_dims(group->vars[0].dimensions,
                                  {{"ncols", 8ull * 4096}});
  std::printf("ADIOS config: group '%s', var '%s' %s via %s\n",
              group->name.c_str(), group->vars[0].name.c_str(),
              nda::Box::whole(*dims).to_string().c_str(),
              std::string(to_string(group->method)).c_str());

  workflow::Spec spec;
  spec.app = workflow::AppSel::kLaplace;
  spec.method = workflow::MethodSel::kFlexpath;
  spec.machine = hpc::cori_knl();
  spec.nsim = 8;
  spec.nana = 4;
  spec.steps = 3;
  spec.laplace_rows = 96;          // scaled-down grid, real Jacobi kernel
  spec.laplace_cols_per_proc = 96;
  spec.flexpath_queue_size = 1;

  std::printf("Laplace + MTA via Flexpath on %s (%d+%d ranks, %d steps, "
              "queue_size=1)\n",
              spec.machine.name.c_str(), spec.nsim, spec.nana, spec.steps);

  auto result = workflow::run(spec);
  if (!result.ok) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 result.failure_summary().c_str());
    return 1;
  }
  std::printf("  end-to-end:          %s\n",
              format_time(result.end_to_end).c_str());
  std::printf("  sim/ana overlap:     sim done %.2f s, ana done %.2f s\n",
              result.sim_span, result.ana_span);
  std::printf("  field variance (2nd moment): %.4f\n",
              result.sample_analysis_value);
  std::printf("  (the hot boundary diffusing into the field gives a "
              "non-trivial variance)\n");
  return 0;
}
