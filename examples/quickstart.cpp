// Quickstart: stage a 2-D array through DataSpaces on a simulated Titan and
// read it back from a different decomposition.
//
//   cmake --build build && ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library: one writer process
// puts its slab into the shared space, publishes the version, and a reader
// gets a differently-shaped selection back — byte-identical content.
#include <cstdio>

#include "common/units.h"
#include "dataspaces/dataspaces.h"
#include "hpc/cluster.h"
#include "net/fabric.h"
#include "net/transport.h"
#include "sim/engine.h"

using namespace imc;

int main() {
  // A simulated machine: Titan's interconnect, memory and RDMA limits.
  sim::Engine engine;
  hpc::Cluster cluster(hpc::titan());
  net::Fabric fabric(engine, cluster.config());
  net::RdmaTransport ugni(engine, fabric, net::TransportKind::kRdmaUgni);

  // Deploy two DataSpaces staging servers.
  dataspaces::Config config;
  config.num_servers = 2;
  dataspaces::DataSpaces ds(engine, cluster, ugni, config);
  if (Status st = ds.deploy(cluster.allocate_nodes(1)); !st.is_ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // One writer and one reader process on their own compute nodes.
  const int wnode = cluster.allocate_nodes(1)[0];
  const int rnode = cluster.allocate_nodes(1)[0];
  mem::ProcessMemory wmem(engine, "writer");
  mem::ProcessMemory rmem(engine, "reader");
  dataspaces::DataSpaces::Client writer(
      ds, net::Endpoint{1, 0, &cluster.node(wnode)}, wmem);
  dataspaces::DataSpaces::Client reader(
      ds, net::Endpoint{2, 1, &cluster.node(rnode)}, rmem);

  const nda::Dims global = {256, 256};
  const nda::VarDesc var{"temperature", global, /*version=*/0};
  nda::Slab field = nda::Slab::synthetic(nda::Box::whole(global), /*seed=*/42);

  engine.spawn([](dataspaces::DataSpaces::Client& w, nda::VarDesc var,
                  nda::Slab field, sim::Engine& e) -> sim::Task<> {
    if (Status st = co_await w.init(); !st.is_ok()) co_return;
    if (Status st = co_await w.put(var, field); !st.is_ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.to_string().c_str());
      co_return;
    }
    if (Status st = co_await w.publish(var); !st.is_ok()) {
      std::fprintf(stderr, "publish failed: %s\n", st.to_string().c_str());
      co_return;
    }
    std::printf("[%.3f ms] writer: staged %s (%s)\n", e.now() * 1e3,
                var.name.c_str(), format_bytes(
                    static_cast<double>(field.declared_bytes())).c_str());
  }(writer, var, field, engine));

  engine.spawn([](dataspaces::DataSpaces::Client& r, nda::VarDesc var,
                  nda::Slab original, sim::Engine& e) -> sim::Task<> {
    if (Status st = co_await r.init(); !st.is_ok()) co_return;
    if (Status st = co_await r.wait_version(var.name, var.version);
        !st.is_ok()) {
      std::fprintf(stderr, "wait_version failed: %s\n",
                   st.to_string().c_str());
      co_return;
    }
    // Read the middle rows — a selection the writer never staged as-is.
    nda::Box selection({64, 0}, {192, 256});
    auto got = co_await r.get(var, selection);
    if (!got.has_value()) {
      std::fprintf(stderr, "get failed: %s\n",
                   got.status().to_string().c_str());
      co_return;
    }
    const bool identical =
        got->checksum() == original.extract(selection).checksum();
    std::printf("[%.3f ms] reader: got %s of %s — content %s\n", e.now() * 1e3,
                selection.to_string().c_str(), var.name.c_str(),
                identical ? "IDENTICAL" : "CORRUPT");
  }(reader, var, field, engine));

  engine.run();
  std::printf("simulated end-to-end: %s\n",
              format_time(engine.now()).c_str());
  return 0;
}
