// The LAMMPS + MSD coupled workflow (Table II) end to end, selectable
// method and machine:
//
//   ./build/examples/lammps_msd [method] [machine]
//     method:  mpiio | dataspaces | dataspaces-native | dimes |
//              dimes-native | flexpath | decaf       (default dataspaces)
//     machine: titan | cori                           (default titan)
//
// Runs a scaled-down melt (real Lennard-Jones kernel, 8 simulation ranks, 4
// analytics ranks) so the MSD printed at the end is computed from real
// particle positions moving through the staging pipeline.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/units.h"
#include "workflow/workflow.h"

using namespace imc;

int main(int argc, char** argv) {
  workflow::Spec spec;
  spec.app = workflow::AppSel::kLammps;
  spec.method = workflow::MethodSel::kDataspacesAdios;
  spec.machine = hpc::titan();
  spec.nsim = 8;
  spec.nana = 4;
  spec.steps = 4;
  spec.lammps_atoms_per_proc = 4000;  // small enough to materialize

  if (argc > 1) {
    const std::string m = argv[1];
    if (m == "mpiio") {
      spec.method = workflow::MethodSel::kMpiIo;
    } else if (m == "dataspaces") {
      spec.method = workflow::MethodSel::kDataspacesAdios;
    } else if (m == "dataspaces-native") {
      spec.method = workflow::MethodSel::kDataspacesNative;
    } else if (m == "dimes") {
      spec.method = workflow::MethodSel::kDimesAdios;
    } else if (m == "dimes-native") {
      spec.method = workflow::MethodSel::kDimesNative;
    } else if (m == "flexpath") {
      spec.method = workflow::MethodSel::kFlexpath;
    } else if (m == "decaf") {
      spec.method = workflow::MethodSel::kDecaf;
    } else {
      std::fprintf(stderr, "unknown method '%s'\n", m.c_str());
      return 2;
    }
  }
  if (argc > 2 && std::strcmp(argv[2], "cori") == 0) {
    spec.machine = hpc::cori_knl();
  }

  std::printf("LAMMPS melt + MSD via %s on %s (%d sim + %d analytics "
              "ranks, %d steps)\n",
              std::string(to_string(spec.method)).c_str(),
              spec.machine.name.c_str(), spec.nsim, spec.nana, spec.steps);

  auto result = workflow::run(spec);
  if (!result.ok) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 result.failure_summary().c_str());
    return 1;
  }

  std::printf("  end-to-end:        %s\n",
              format_time(result.end_to_end).c_str());
  std::printf("  sim compute/rank:  %s   staging/rank: %s\n",
              format_time(result.sim_compute).c_str(),
              format_time(result.sim_staging).c_str());
  std::printf("  ana compute/rank:  %s   staging/rank: %s\n",
              format_time(result.ana_compute).c_str(),
              format_time(result.ana_staging).c_str());
  std::printf("  sim rank peak mem: %s\n",
              format_bytes(static_cast<double>(result.sim_rank_peak)).c_str());
  if (result.server_peak > 0) {
    std::printf("  staging peak mem:  %s (%d servers)\n",
                format_bytes(static_cast<double>(result.server_peak)).c_str(),
                result.servers_used);
  }
  std::printf("  MSD after %d coupling steps: %.4f sigma^2\n", spec.steps,
              result.sample_analysis_value);
  std::printf("  (positive MSD: the melt is really diffusing through the "
              "staging pipeline)\n");
  return 0;
}
