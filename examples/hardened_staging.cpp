// The robustness story, end to end: every Table IV failure mode induced
// live, then the same scenario re-run with the corresponding "suggested
// resolve" implemented — wait-and-retry RDMA registration, pooled sockets,
// and metered DRC.
//
//   ./build/examples/hardened_staging
#include <cstdio>

#include "common/units.h"
#include "workflow/workflow.h"

using namespace imc;

namespace {

void show(const char* title, const workflow::RunResult& broken,
          const workflow::RunResult& hardened) {
  std::printf("\n%s\n", title);
  std::printf("  vanilla:   %s\n", broken.failure_summary().c_str());
  if (hardened.ok) {
    std::printf("  hardened:  ok — end-to-end %s\n",
                format_time(hardened.end_to_end).c_str());
  } else {
    std::printf("  hardened:  %s\n", hardened.failure_summary().c_str());
  }
}

}  // namespace

int main() {
  std::printf("Hardened staging: Table IV failure modes and their "
              "implemented resolves\n");

  {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLaplace;
    spec.method = workflow::MethodSel::kDataspacesNative;
    spec.machine = hpc::titan();
    spec.nsim = 32;
    spec.nana = 16;
    spec.steps = 3;
    spec.num_servers = 4;
    spec.servers_per_node = 1;
    auto broken = workflow::run(spec);
    spec.rdma_wait_retry = true;
    auto hardened = workflow::run(spec);
    show("[out of RDMA memory]  128 MB/proc Laplace on Titan; resolve: "
         "wait-and-retry registration",
         broken, hardened);
  }
  {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLammps;
    spec.method = workflow::MethodSel::kDataspacesNative;
    spec.machine = hpc::titan();
    spec.machine.socket_descriptors_per_node = 512;
    spec.nsim = 256;
    spec.nana = 128;
    spec.steps = 2;
    spec.transport = workflow::Spec::Transport::kSockets;
    auto broken = workflow::run(spec);
    spec.socket_pooling = true;
    auto hardened = workflow::run(spec);
    show("[out of sockets]      256+128 socket clients, 512 descriptors/node; "
         "resolve: pooled streams",
         broken, hardened);
    if (hardened.ok) {
      std::printf("  (peak descriptors with pooling: %d)\n",
                  hardened.socket_peak);
    }
  }
  {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLammps;
    spec.method = workflow::MethodSel::kDataspacesNative;
    spec.machine = hpc::cori_knl();
    spec.machine.drc_capacity = 64;
    spec.nsim = 128;
    spec.nana = 64;
    spec.steps = 2;
    auto broken = workflow::run(spec);
    spec.drc_metered = true;
    auto hardened = workflow::run(spec);
    show("[out of DRC]          192 credential requests, capacity 64; "
         "resolve: metered requests",
         broken, hardened);
  }
  {
    workflow::Spec spec;
    spec.app = workflow::AppSel::kLammps;
    spec.method = workflow::MethodSel::kDataspacesNative;
    spec.machine = hpc::titan();
    spec.nsim = 16;
    spec.nana = 8;
    spec.steps = 1;
    spec.lammps_atoms_per_proc = 54'000'000;  // 5*16*54e6 > 2^32 elements
    // A 2.2 GB/proc output needs room: spread the ranks and the staging.
    spec.ranks_per_node = 2;
    spec.num_servers = 32;
    spec.servers_per_node = 1;
    spec.use_32bit_dims = true;
    auto broken = workflow::run(spec);
    spec.use_32bit_dims = false;  // the resolve: 64-bit dimensions
    auto hardened = workflow::run(spec);
    show("[dimension overflow]  >2^32 elements on the legacy 32-bit build; "
         "resolve: 64-bit dimensions",
         broken, hardened);
  }

  std::printf("\nEach resolve has a cost (latency, serialized startup, "
              "evicted versions); bench_ablation quantifies them.\n");
  return 0;
}
