# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_hpc[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_lustre[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_ndarray[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_dataspaces[1]_include.cmake")
include("/root/repo/build/tests/test_dimes[1]_include.cmake")
include("/root/repo/build/tests/test_flexpath[1]_include.cmake")
include("/root/repo/build/tests/test_decaf[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_adios[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_resolves[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
