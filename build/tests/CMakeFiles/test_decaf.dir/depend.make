# Empty dependencies file for test_decaf.
# This may be replaced when dependencies are built.
