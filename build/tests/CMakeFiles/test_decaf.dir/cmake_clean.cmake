file(REMOVE_RECURSE
  "CMakeFiles/test_decaf.dir/decaf_test.cpp.o"
  "CMakeFiles/test_decaf.dir/decaf_test.cpp.o.d"
  "test_decaf"
  "test_decaf.pdb"
  "test_decaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
