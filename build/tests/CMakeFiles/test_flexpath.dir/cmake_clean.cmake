file(REMOVE_RECURSE
  "CMakeFiles/test_flexpath.dir/flexpath_test.cpp.o"
  "CMakeFiles/test_flexpath.dir/flexpath_test.cpp.o.d"
  "test_flexpath"
  "test_flexpath.pdb"
  "test_flexpath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
