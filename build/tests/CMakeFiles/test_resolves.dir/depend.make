# Empty dependencies file for test_resolves.
# This may be replaced when dependencies are built.
