file(REMOVE_RECURSE
  "CMakeFiles/test_resolves.dir/resolves_test.cpp.o"
  "CMakeFiles/test_resolves.dir/resolves_test.cpp.o.d"
  "test_resolves"
  "test_resolves.pdb"
  "test_resolves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
