file(REMOVE_RECURSE
  "CMakeFiles/test_serial.dir/serial_test.cpp.o"
  "CMakeFiles/test_serial.dir/serial_test.cpp.o.d"
  "test_serial"
  "test_serial.pdb"
  "test_serial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
