file(REMOVE_RECURSE
  "CMakeFiles/test_dimes.dir/dimes_test.cpp.o"
  "CMakeFiles/test_dimes.dir/dimes_test.cpp.o.d"
  "test_dimes"
  "test_dimes.pdb"
  "test_dimes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
