# Empty compiler generated dependencies file for test_dimes.
# This may be replaced when dependencies are built.
