# Empty dependencies file for test_dataspaces.
# This may be replaced when dependencies are built.
