file(REMOVE_RECURSE
  "CMakeFiles/test_dataspaces.dir/dataspaces_test.cpp.o"
  "CMakeFiles/test_dataspaces.dir/dataspaces_test.cpp.o.d"
  "CMakeFiles/test_dataspaces.dir/locks_test.cpp.o"
  "CMakeFiles/test_dataspaces.dir/locks_test.cpp.o.d"
  "test_dataspaces"
  "test_dataspaces.pdb"
  "test_dataspaces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataspaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
