# Empty dependencies file for bench_fig9_layout_impact.
# This may be replaced when dependencies are built.
