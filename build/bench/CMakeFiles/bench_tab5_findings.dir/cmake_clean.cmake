file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_findings.dir/bench_tab5_findings.cpp.o"
  "CMakeFiles/bench_tab5_findings.dir/bench_tab5_findings.cpp.o.d"
  "bench_tab5_findings"
  "bench_tab5_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
