# Empty dependencies file for bench_tab5_findings.
# This may be replaced when dependencies are built.
