# Empty dependencies file for bench_fig8_data_layout.
# This may be replaced when dependencies are built.
