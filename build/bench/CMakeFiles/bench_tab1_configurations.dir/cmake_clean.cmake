file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_configurations.dir/bench_tab1_configurations.cpp.o"
  "CMakeFiles/bench_tab1_configurations.dir/bench_tab1_configurations.cpp.o.d"
  "bench_tab1_configurations"
  "bench_tab1_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
