# Empty dependencies file for bench_tab1_configurations.
# This may be replaced when dependencies are built.
