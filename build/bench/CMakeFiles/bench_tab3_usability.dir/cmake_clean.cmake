file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_usability.dir/bench_tab3_usability.cpp.o"
  "CMakeFiles/bench_tab3_usability.dir/bench_tab3_usability.cpp.o.d"
  "bench_tab3_usability"
  "bench_tab3_usability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_usability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
