# Empty dependencies file for bench_tab3_usability.
# This may be replaced when dependencies are built.
