# Empty compiler generated dependencies file for bench_tab4_robustness.
# This may be replaced when dependencies are built.
