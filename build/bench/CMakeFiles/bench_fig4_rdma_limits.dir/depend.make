# Empty dependencies file for bench_fig4_rdma_limits.
# This may be replaced when dependencies are built.
