file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rdma_limits.dir/bench_fig4_rdma_limits.cpp.o"
  "CMakeFiles/bench_fig4_rdma_limits.dir/bench_fig4_rdma_limits.cpp.o.d"
  "bench_fig4_rdma_limits"
  "bench_fig4_rdma_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rdma_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
