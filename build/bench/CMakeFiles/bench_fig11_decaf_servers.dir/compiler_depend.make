# Empty compiler generated dependencies file for bench_fig11_decaf_servers.
# This may be replaced when dependencies are built.
