
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_decaf_servers.cpp" "bench/CMakeFiles/bench_fig11_decaf_servers.dir/bench_fig11_decaf_servers.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_decaf_servers.dir/bench_fig11_decaf_servers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workflow/CMakeFiles/imc_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/decaf/CMakeFiles/imc_decaf.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/imc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/adios/CMakeFiles/imc_adios.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/imc_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/dataspaces/CMakeFiles/imc_dataspaces.dir/DependInfo.cmake"
  "/root/repo/build/src/dimes/CMakeFiles/imc_dimes.dir/DependInfo.cmake"
  "/root/repo/build/src/flexpath/CMakeFiles/imc_flexpath.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/imc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/imc_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/imc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/imc_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/imc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/imc_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/imc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
