file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_decaf_servers.dir/bench_fig11_decaf_servers.cpp.o"
  "CMakeFiles/bench_fig11_decaf_servers.dir/bench_fig11_decaf_servers.cpp.o.d"
  "bench_fig11_decaf_servers"
  "bench_fig11_decaf_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_decaf_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
