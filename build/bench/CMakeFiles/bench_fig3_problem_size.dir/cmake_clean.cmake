file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_problem_size.dir/bench_fig3_problem_size.cpp.o"
  "CMakeFiles/bench_fig3_problem_size.dir/bench_fig3_problem_size.cpp.o.d"
  "bench_fig3_problem_size"
  "bench_fig3_problem_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
