file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_transport.dir/bench_fig10_transport.cpp.o"
  "CMakeFiles/bench_fig10_transport.dir/bench_fig10_transport.cpp.o.d"
  "bench_fig10_transport"
  "bench_fig10_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
