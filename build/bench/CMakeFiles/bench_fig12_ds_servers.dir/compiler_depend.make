# Empty compiler generated dependencies file for bench_fig12_ds_servers.
# This may be replaced when dependencies are built.
