file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gpu.dir/bench_ext_gpu.cpp.o"
  "CMakeFiles/bench_ext_gpu.dir/bench_ext_gpu.cpp.o.d"
  "bench_ext_gpu"
  "bench_ext_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
