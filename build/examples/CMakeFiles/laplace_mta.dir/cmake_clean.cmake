file(REMOVE_RECURSE
  "CMakeFiles/laplace_mta.dir/laplace_mta.cpp.o"
  "CMakeFiles/laplace_mta.dir/laplace_mta.cpp.o.d"
  "laplace_mta"
  "laplace_mta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laplace_mta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
