# Empty dependencies file for laplace_mta.
# This may be replaced when dependencies are built.
