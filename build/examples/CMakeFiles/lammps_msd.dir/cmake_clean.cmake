file(REMOVE_RECURSE
  "CMakeFiles/lammps_msd.dir/lammps_msd.cpp.o"
  "CMakeFiles/lammps_msd.dir/lammps_msd.cpp.o.d"
  "lammps_msd"
  "lammps_msd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lammps_msd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
