# Empty dependencies file for lammps_msd.
# This may be replaced when dependencies are built.
