# Empty compiler generated dependencies file for hardened_staging.
# This may be replaced when dependencies are built.
