file(REMOVE_RECURSE
  "CMakeFiles/hardened_staging.dir/hardened_staging.cpp.o"
  "CMakeFiles/hardened_staging.dir/hardened_staging.cpp.o.d"
  "hardened_staging"
  "hardened_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardened_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
