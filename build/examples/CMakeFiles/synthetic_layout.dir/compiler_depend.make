# Empty compiler generated dependencies file for synthetic_layout.
# This may be replaced when dependencies are built.
