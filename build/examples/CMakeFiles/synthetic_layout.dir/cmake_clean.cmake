file(REMOVE_RECURSE
  "CMakeFiles/synthetic_layout.dir/synthetic_layout.cpp.o"
  "CMakeFiles/synthetic_layout.dir/synthetic_layout.cpp.o.d"
  "synthetic_layout"
  "synthetic_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
