# Empty dependencies file for imc_net.
# This may be replaced when dependencies are built.
