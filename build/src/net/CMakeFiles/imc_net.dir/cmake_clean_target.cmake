file(REMOVE_RECURSE
  "libimc_net.a"
)
