file(REMOVE_RECURSE
  "CMakeFiles/imc_net.dir/drc.cpp.o"
  "CMakeFiles/imc_net.dir/drc.cpp.o.d"
  "CMakeFiles/imc_net.dir/fabric.cpp.o"
  "CMakeFiles/imc_net.dir/fabric.cpp.o.d"
  "CMakeFiles/imc_net.dir/transport.cpp.o"
  "CMakeFiles/imc_net.dir/transport.cpp.o.d"
  "libimc_net.a"
  "libimc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
