# Empty dependencies file for imc_decaf.
# This may be replaced when dependencies are built.
