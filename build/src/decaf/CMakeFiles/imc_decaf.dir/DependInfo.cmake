
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decaf/decaf.cpp" "src/decaf/CMakeFiles/imc_decaf.dir/decaf.cpp.o" "gcc" "src/decaf/CMakeFiles/imc_decaf.dir/decaf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/imc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/imc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/imc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hpc/CMakeFiles/imc_hpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/imc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/imc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/imc_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/imc_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/imc_lustre.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
