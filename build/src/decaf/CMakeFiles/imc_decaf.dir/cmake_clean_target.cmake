file(REMOVE_RECURSE
  "libimc_decaf.a"
)
