file(REMOVE_RECURSE
  "CMakeFiles/imc_decaf.dir/decaf.cpp.o"
  "CMakeFiles/imc_decaf.dir/decaf.cpp.o.d"
  "libimc_decaf.a"
  "libimc_decaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_decaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
