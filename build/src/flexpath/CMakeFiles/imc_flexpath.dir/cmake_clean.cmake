file(REMOVE_RECURSE
  "CMakeFiles/imc_flexpath.dir/flexpath.cpp.o"
  "CMakeFiles/imc_flexpath.dir/flexpath.cpp.o.d"
  "libimc_flexpath.a"
  "libimc_flexpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_flexpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
