# Empty compiler generated dependencies file for imc_flexpath.
# This may be replaced when dependencies are built.
