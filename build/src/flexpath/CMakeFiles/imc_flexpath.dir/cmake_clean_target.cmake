file(REMOVE_RECURSE
  "libimc_flexpath.a"
)
