file(REMOVE_RECURSE
  "CMakeFiles/imc_common.dir/hilbert.cpp.o"
  "CMakeFiles/imc_common.dir/hilbert.cpp.o.d"
  "CMakeFiles/imc_common.dir/log.cpp.o"
  "CMakeFiles/imc_common.dir/log.cpp.o.d"
  "CMakeFiles/imc_common.dir/status.cpp.o"
  "CMakeFiles/imc_common.dir/status.cpp.o.d"
  "CMakeFiles/imc_common.dir/units.cpp.o"
  "CMakeFiles/imc_common.dir/units.cpp.o.d"
  "libimc_common.a"
  "libimc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
