# Empty compiler generated dependencies file for imc_ndarray.
# This may be replaced when dependencies are built.
