file(REMOVE_RECURSE
  "CMakeFiles/imc_ndarray.dir/ndarray.cpp.o"
  "CMakeFiles/imc_ndarray.dir/ndarray.cpp.o.d"
  "libimc_ndarray.a"
  "libimc_ndarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_ndarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
