file(REMOVE_RECURSE
  "libimc_ndarray.a"
)
