file(REMOVE_RECURSE
  "CMakeFiles/imc_workflow.dir/workflow.cpp.o"
  "CMakeFiles/imc_workflow.dir/workflow.cpp.o.d"
  "libimc_workflow.a"
  "libimc_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
