# Empty compiler generated dependencies file for imc_workflow.
# This may be replaced when dependencies are built.
