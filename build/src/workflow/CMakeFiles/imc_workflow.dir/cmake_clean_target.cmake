file(REMOVE_RECURSE
  "libimc_workflow.a"
)
