# Empty dependencies file for imc_hpc.
# This may be replaced when dependencies are built.
