file(REMOVE_RECURSE
  "libimc_hpc.a"
)
