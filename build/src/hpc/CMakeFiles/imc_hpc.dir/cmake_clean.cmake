file(REMOVE_RECURSE
  "CMakeFiles/imc_hpc.dir/cluster.cpp.o"
  "CMakeFiles/imc_hpc.dir/cluster.cpp.o.d"
  "CMakeFiles/imc_hpc.dir/machine.cpp.o"
  "CMakeFiles/imc_hpc.dir/machine.cpp.o.d"
  "libimc_hpc.a"
  "libimc_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
