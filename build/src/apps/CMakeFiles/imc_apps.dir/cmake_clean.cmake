file(REMOVE_RECURSE
  "CMakeFiles/imc_apps.dir/analysis.cpp.o"
  "CMakeFiles/imc_apps.dir/analysis.cpp.o.d"
  "CMakeFiles/imc_apps.dir/apps.cpp.o"
  "CMakeFiles/imc_apps.dir/apps.cpp.o.d"
  "CMakeFiles/imc_apps.dir/kernels.cpp.o"
  "CMakeFiles/imc_apps.dir/kernels.cpp.o.d"
  "libimc_apps.a"
  "libimc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
