file(REMOVE_RECURSE
  "libimc_apps.a"
)
