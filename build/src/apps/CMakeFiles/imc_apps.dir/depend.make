# Empty dependencies file for imc_apps.
# This may be replaced when dependencies are built.
