file(REMOVE_RECURSE
  "CMakeFiles/imc_lustre.dir/lustre.cpp.o"
  "CMakeFiles/imc_lustre.dir/lustre.cpp.o.d"
  "libimc_lustre.a"
  "libimc_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
