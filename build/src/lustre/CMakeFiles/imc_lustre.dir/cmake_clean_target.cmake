file(REMOVE_RECURSE
  "libimc_lustre.a"
)
