# Empty dependencies file for imc_lustre.
# This may be replaced when dependencies are built.
