# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("mem")
subdirs("hpc")
subdirs("net")
subdirs("lustre")
subdirs("mpi")
subdirs("ndarray")
subdirs("serial")
subdirs("dataspaces")
subdirs("dimes")
subdirs("flexpath")
subdirs("decaf")
subdirs("adios")
subdirs("apps")
subdirs("workflow")
