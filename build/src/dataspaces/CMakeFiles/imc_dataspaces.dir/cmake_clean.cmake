file(REMOVE_RECURSE
  "CMakeFiles/imc_dataspaces.dir/dataspaces.cpp.o"
  "CMakeFiles/imc_dataspaces.dir/dataspaces.cpp.o.d"
  "CMakeFiles/imc_dataspaces.dir/locks.cpp.o"
  "CMakeFiles/imc_dataspaces.dir/locks.cpp.o.d"
  "CMakeFiles/imc_dataspaces.dir/regions.cpp.o"
  "CMakeFiles/imc_dataspaces.dir/regions.cpp.o.d"
  "libimc_dataspaces.a"
  "libimc_dataspaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_dataspaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
