# Empty compiler generated dependencies file for imc_dataspaces.
# This may be replaced when dependencies are built.
