file(REMOVE_RECURSE
  "libimc_dataspaces.a"
)
