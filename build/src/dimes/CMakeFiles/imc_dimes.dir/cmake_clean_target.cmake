file(REMOVE_RECURSE
  "libimc_dimes.a"
)
