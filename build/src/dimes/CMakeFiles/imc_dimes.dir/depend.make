# Empty dependencies file for imc_dimes.
# This may be replaced when dependencies are built.
