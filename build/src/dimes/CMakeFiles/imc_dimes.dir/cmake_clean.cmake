file(REMOVE_RECURSE
  "CMakeFiles/imc_dimes.dir/dimes.cpp.o"
  "CMakeFiles/imc_dimes.dir/dimes.cpp.o.d"
  "libimc_dimes.a"
  "libimc_dimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_dimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
