file(REMOVE_RECURSE
  "libimc_adios.a"
)
