file(REMOVE_RECURSE
  "CMakeFiles/imc_adios.dir/adios.cpp.o"
  "CMakeFiles/imc_adios.dir/adios.cpp.o.d"
  "CMakeFiles/imc_adios.dir/xml.cpp.o"
  "CMakeFiles/imc_adios.dir/xml.cpp.o.d"
  "libimc_adios.a"
  "libimc_adios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_adios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
