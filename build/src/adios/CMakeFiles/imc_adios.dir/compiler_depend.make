# Empty compiler generated dependencies file for imc_adios.
# This may be replaced when dependencies are built.
