file(REMOVE_RECURSE
  "CMakeFiles/imc_serial.dir/ffs.cpp.o"
  "CMakeFiles/imc_serial.dir/ffs.cpp.o.d"
  "libimc_serial.a"
  "libimc_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
