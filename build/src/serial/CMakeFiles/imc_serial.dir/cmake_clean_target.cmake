file(REMOVE_RECURSE
  "libimc_serial.a"
)
