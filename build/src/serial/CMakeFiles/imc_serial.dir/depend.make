# Empty dependencies file for imc_serial.
# This may be replaced when dependencies are built.
