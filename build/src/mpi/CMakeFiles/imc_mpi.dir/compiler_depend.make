# Empty compiler generated dependencies file for imc_mpi.
# This may be replaced when dependencies are built.
