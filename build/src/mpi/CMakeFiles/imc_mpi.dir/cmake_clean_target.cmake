file(REMOVE_RECURSE
  "libimc_mpi.a"
)
