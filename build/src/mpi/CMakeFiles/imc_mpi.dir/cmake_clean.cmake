file(REMOVE_RECURSE
  "CMakeFiles/imc_mpi.dir/comm.cpp.o"
  "CMakeFiles/imc_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/imc_mpi.dir/file.cpp.o"
  "CMakeFiles/imc_mpi.dir/file.cpp.o.d"
  "libimc_mpi.a"
  "libimc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
