file(REMOVE_RECURSE
  "CMakeFiles/imc_mem.dir/memory.cpp.o"
  "CMakeFiles/imc_mem.dir/memory.cpp.o.d"
  "libimc_mem.a"
  "libimc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
