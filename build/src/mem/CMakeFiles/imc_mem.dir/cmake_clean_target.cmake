file(REMOVE_RECURSE
  "libimc_mem.a"
)
