# Empty dependencies file for imc_mem.
# This may be replaced when dependencies are built.
